"""Servers, containers and application processes.

A :class:`Server` is a physical machine: a fabric node with an RNIC.  A
:class:`Container` groups application processes (each with its own virtual
address space and CPU cycle ledger) and is the unit of live migration.

Two assemblers build clusters on top of these parts:

* :class:`ClusterBed` — the generic base: one simulator, one network, any
  set of named servers, cached pairwise TCP channels.  The fleet builder
  (:mod:`repro.fleet`) subclasses it to stand up racks of hosts on a
  fat-tree topology.
* :class:`Testbed` — the paper's evaluation topology (migration source,
  migration destination, N communication partners) as a thin shim over
  ``ClusterBed``; a two-node fleet is the degenerate case of the same
  machinery.
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Optional, Tuple

from repro.config import Config, default_config
from repro.fabric import Network, TcpChannel
from repro.fabric.network import Node
from repro.mem import AddressSpace
from repro.metrics import CpuContext
from repro.rnic import RNIC
from repro.sim import Process, Simulator

_pids = itertools.count(1000)


class AppProcess:
    """One process of a containerised application."""

    def __init__(self, name: str, config: Config, record_samples: bool = False):
        self.pid = next(_pids)
        self.name = name
        self.config = config
        self.space = AddressSpace(name=f"{name}:{self.pid}")
        self.cpu = CpuContext(config.cpu, seed=config.seed ^ self.pid,
                              record_samples=record_samples)
        self.frozen = False
        self._sim_processes: List[Process] = []
        # Opaque heap model: bulk memory (JVM heaps and the like) whose
        # *contents* do not matter to the experiments but whose size and
        # dirtying rate drive pre-copy transfer volume.  Tracked by bytes so
        # a multi-GiB Hadoop container does not materialise real pages.
        self.synthetic_heap_bytes = 0
        self.synthetic_dirty_rate_bps = 0.0  # bytes/second of redirtying
        self._synthetic_last_snapshot: float = 0.0
        self._synthetic_dumped_once = False

    def set_synthetic_heap(self, heap_bytes: int, dirty_rate_bps: float) -> None:
        """Attach an opaque heap (size + redirtying rate) to the process."""
        self.synthetic_heap_bytes = heap_bytes
        self.synthetic_dirty_rate_bps = dirty_rate_bps

    def synthetic_dirty_estimate(self, now: float) -> int:
        """Bytes the next snapshot would ship, without consuming them."""
        if self.synthetic_heap_bytes == 0:
            return 0
        if not self._synthetic_dumped_once:
            return self.synthetic_heap_bytes
        elapsed = max(0.0, now - self._synthetic_last_snapshot)
        return min(self.synthetic_heap_bytes,
                   int(elapsed * self.synthetic_dirty_rate_bps))

    def synthetic_dirty_bytes(self, now: float, full: bool) -> int:
        """Bytes of opaque heap to ship in this snapshot (and reset clock)."""
        if self.synthetic_heap_bytes == 0:
            return 0
        if full or not self._synthetic_dumped_once:
            self._synthetic_dumped_once = True
            self._synthetic_last_snapshot = now
            return self.synthetic_heap_bytes
        elapsed = max(0.0, now - self._synthetic_last_snapshot)
        self._synthetic_last_snapshot = now
        return min(self.synthetic_heap_bytes,
                   int(elapsed * self.synthetic_dirty_rate_bps))

    def attach(self, process: Process) -> Process:
        """Track a sim process as belonging to this app process."""
        self._sim_processes.append(process)
        return process

    def live_sim_processes(self) -> List[Process]:
        """The still-running execution contexts of this process."""
        self._sim_processes = [p for p in self._sim_processes if p.is_alive]
        return list(self._sim_processes)

    def freeze(self) -> None:
        """Stop all the process's execution contexts (CRIU's final freeze)."""
        self.frozen = True
        for process in self.live_sim_processes():
            process.interrupt("frozen")
        self._sim_processes.clear()

    def unfreeze(self) -> None:
        """Thaw a frozen process in place (migration rollback).  The
        interrupted execution contexts are gone for good; the application's
        ``on_rollback`` hook respawns its loops."""
        self.frozen = False

    def __repr__(self) -> str:
        return f"<AppProcess {self.name} pid={self.pid}>"


class Container:
    """The unit of checkpoint/restore: a set of processes on one server."""

    _ids = itertools.count(1)

    def __init__(self, name: str, server: "Server"):
        self.container_id = f"ct{next(self._ids):04d}"
        self.name = name
        self.server = server
        self.processes: List[AppProcess] = []
        self.apps: List[object] = []  # application objects (perftest, hadoop tasks)
        # CRIU seizes the task tree for the duration of each dump; compute
        # loops cooperate by sleeping through [now, paused_until].
        self.paused_until = 0.0

    def pause_for(self, sim: Simulator, duration_s: float) -> None:
        """CRIU-style seizure: cooperative loops sleep until it ends."""
        self.paused_until = max(self.paused_until, sim.now + duration_s)

    def wait_if_paused(self, sim: Simulator):
        """Generator: sleep until the current dump pause (if any) ends."""
        while sim.now < self.paused_until:
            yield sim.timeout(self.paused_until - sim.now)

    def add_process(self, name: str, record_samples: bool = False) -> AppProcess:
        """Create a process inside this container (initial or exec'd)."""
        process = AppProcess(name, self.server.config, record_samples=record_samples)
        self.processes.append(process)
        return process

    def freeze(self) -> None:
        """Stop every process (the final stop-and-copy seizure)."""
        for process in self.processes:
            process.freeze()

    def unfreeze(self) -> None:
        """Thaw every process in place (migration rollback on the source)."""
        for process in self.processes:
            process.unfreeze()

    def total_mapped_bytes(self) -> int:
        """Mapped virtual memory across all the container's processes."""
        return sum(p.space.total_mapped_bytes() for p in self.processes)

    def __repr__(self) -> str:
        return f"<Container {self.name} ({self.container_id}) on {self.server.name}>"


class Server:
    """A physical machine: fabric node + RNIC + containers."""

    def __init__(self, sim: Simulator, network: Network, name: str, config: Config):
        self.sim = sim
        self.network = network
        self.name = name
        self.config = config
        self.node: Node = network.add_node(name)
        self.rnic = RNIC(sim, self.node, config)
        self.containers: Dict[str, Container] = {}

    def create_container(self, name: str) -> Container:
        if name in self.containers:
            raise ValueError(f"{self.name}: container {name!r} already exists")
        container = Container(name, self)
        self.containers[name] = container
        return container

    def adopt_container(self, container: Container) -> None:
        """Take ownership of a (restored) container."""
        container.server = self
        self.containers[container.name] = container

    def remove_container(self, name: str) -> Container:
        return self.containers.pop(name)

    def __repr__(self) -> str:
        return f"<Server {self.name}>"


class ClusterBed:
    """Generic cluster assembler: simulator + network + named servers.

    Owns the lazily-created pairwise TCP channels used by the migration
    tool (state transfer) and the MigrRDMA control plane (partner
    notification, rkey fetches).  Subclasses decide *which* servers exist:
    :class:`Testbed` stands up the paper's src/dst/partners trio,
    :class:`repro.fleet.Fleet` stands up racks of hosts on a fat-tree.
    """

    def __init__(self, config: Optional[Config] = None):
        # Restart the PID stream per bed: pids name metrics and seed
        # per-process CPU jitter (config.seed ^ pid), so leaking the
        # counter across beds would make the second run of an identical
        # scenario in one interpreter observably different.
        global _pids
        _pids = itertools.count(1000)
        # Same story for the RNIC QPN band stream: bands make QPNs (and
        # so virtual QPNs) testbed-unique, and must restart with the bed.
        from repro.rnic.nic import reset_qpn_bases
        reset_qpn_bases()
        self.config = config or default_config()
        self.sim = Simulator(scheduler=getattr(self.config, "scheduler", "wheel"))
        self.network = Network(self.sim, self.config)
        self._server_list: List[Server] = []
        self._servers_by_name: Dict[str, Server] = {}
        self._channels: Dict[Tuple[str, str], TcpChannel] = {}

    def add_server(self, name: str) -> Server:
        """Create and register a server; order of creation is the order
        :attr:`servers` reports (and therefore part of determinism)."""
        if name in self._servers_by_name:
            raise ValueError(f"duplicate server name {name!r}")
        server = Server(self.sim, self.network, name, self.config)
        self._server_list.append(server)
        self._servers_by_name[name] = server
        return server

    @property
    def servers(self) -> List[Server]:
        return list(self._server_list)

    def server(self, name: str) -> Server:
        try:
            return self._servers_by_name[name]
        except KeyError:
            raise LookupError(f"unknown server {name!r}") from None

    def channel(self, a: str, b: str) -> TcpChannel:
        """The (cached) TCP channel between servers ``a`` and ``b``."""
        if a == b:
            raise ValueError("no loopback channels")
        key = (min(a, b), max(a, b))
        channel = self._channels.get(key)
        if channel is None:
            channel = TcpChannel(self.network, key[0], key[1])
            self._channels[key] = channel
        return channel

    def run(self, process_or_gen, limit: float = 300.0):
        """Run a generator/process to completion on the shared simulator."""
        if isinstance(process_or_gen, Generator):
            process_or_gen = self.sim.spawn(process_or_gen)
        return self.sim.run_until_complete(process_or_gen, limit=limit)


class Testbed(ClusterBed):
    """The evaluation topology: source, destination, N partners.

    A back-compat shim over :class:`ClusterBed` that creates the paper's
    servers in the exact historical order ("src", "dst", "partner0", ...),
    which keeps the pid stream — and with it every simtime-equivalence
    pin — bit-identical to the pre-fleet assembler.
    """

    def __init__(self, config: Optional[Config] = None, num_partners: int = 1):
        super().__init__(config)
        self.source = self.add_server("src")
        self.destination = self.add_server("dst")
        self.partners: List[Server] = [
            self.add_server(f"partner{i}") for i in range(num_partners)
        ]


def build(config: Optional[Config] = None, num_partners: int = 1) -> Testbed:
    """Convenience constructor used by examples and benchmarks."""
    return Testbed(config=config, num_partners=num_partners)
