"""Tracing: spans and instant events on simulated time, per-lane.

The :class:`Tracer` is the recording half of the observability subsystem
(:mod:`repro.obs`).  Model code emits **spans** (durations) and **instant
events** keyed on *simulated* time, organised into lanes: a lane is a
(process, thread) pair in Chrome-trace terms, mapped here to
(node-or-subsystem, component) — e.g. ``("source", "qp0x100")`` for one
RNIC engine, ``("migration", "blackout-phases")`` for the Figure 3 phases.

The simulation kernel itself is the one component whose activity is
invisible in simulated time (dispatch is instantaneous by construction),
so its lane records **wall-clock** batches instead: every
``kernel_sample_every`` heap events it emits one span covering the batch's
wall-clock window plus a counter sample of ``events_processed`` — where
the real time goes, next to what the model did.

Hard guarantees
---------------
- **Zero cost when absent.**  Instrumented code guards every emission with
  ``tr = sim.tracer`` / ``if tr is not None`` — a tracer-less simulation
  pays one attribute load and a None test per instrumentation point.
- **No semantic footprint.**  The tracer never schedules events, never
  advances time, and never draws randomness: enabling it cannot move a
  simulated timestamp or shift the RNG stream (pinned by
  ``tests/integration/test_simtime_equivalence.py``).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Lane", "Span", "Tracer"]

#: Event-record kinds (first tuple element of each recorded event).
_SPAN = "X"
_BEGIN = "B"
_INSTANT = "i"
_COUNTER = "C"


class Lane:
    """One horizontal track in the trace: a (process, thread) pair."""

    __slots__ = ("pid", "tid", "process", "thread")

    def __init__(self, pid: int, tid: int, process: str, thread: str):
        self.pid = pid
        self.tid = tid
        self.process = process
        self.thread = thread

    def __repr__(self) -> str:
        return f"<Lane {self.process}/{self.thread} pid={self.pid} tid={self.tid}>"


class Span:
    """An open duration event; call :meth:`end` when the work finishes.

    Spans survive generator yields (the reason they are handles, not
    context managers): begin in one callback, end many simulated
    microseconds later.  A span never ended is exported as an open ``B``
    event so the timeline still shows where it started.
    """

    __slots__ = ("_tracer", "_lane", "name", "start_us", "args", "_ended")

    def __init__(self, tracer: "Tracer", lane: Lane, name: str,
                 start_us: float, args: Optional[Dict[str, Any]]):
        self._tracer = tracer
        self._lane = lane
        self.name = name
        self.start_us = start_us
        self.args = args
        self._ended = False

    def end(self, **extra_args: Any) -> float:
        """Close the span at the current simulated time; returns duration (us)."""
        if self._ended:
            return 0.0
        self._ended = True
        tracer = self._tracer
        tracer._open.pop(id(self), None)
        end_us = tracer._now_us()
        if extra_args:
            args = dict(self.args) if self.args else {}
            args.update(extra_args)
            self.args = args
        tracer._events.append((_SPAN, self._lane, self.name, self.start_us,
                               end_us - self.start_us, self.args))
        return end_us - self.start_us


class _SyncSpan:
    """``with tracer.span(...)`` for spans that do not cross a yield."""

    __slots__ = ("_span",)

    def __init__(self, span: Optional[Span]):
        self._span = span  # None when the tracer is disabled

    def __enter__(self) -> Optional[Span]:
        return self._span

    def __exit__(self, *exc) -> None:
        if self._span is not None:
            self._span.end()


class Tracer:
    """Records spans/instants/counters against a simulator's clock.

    Attach with :meth:`attach` (sets ``sim.tracer``); instrumented code all
    over the stack then starts emitting.  ``enabled=False`` keeps the
    object inert even when attached — every emission method returns
    immediately.
    """

    #: Process name used for the simulation kernel's wall-clock lane.
    KERNEL_PROCESS = "sim-kernel"

    def __init__(self, sim, enabled: bool = True,
                 kernel_sample_every: int = 1024,
                 kernel_dispatch: bool = False):
        self.sim = sim
        self.enabled = enabled
        #: per-dispatch instants on the kernel lane (verbose; big traces).
        self.kernel_dispatch = kernel_dispatch
        self.kernel_sample_every = max(1, kernel_sample_every)
        self._events: List[Tuple] = []
        #: spans begun but not yet ended (exported as open ``B`` events).
        self._open: Dict[int, Span] = {}
        self._lanes: Dict[Tuple[str, str], Lane] = {}
        self._pids: Dict[str, int] = {}
        self._next_tid: Dict[int, int] = {}
        # Kernel wall-clock sampling state.
        self._wall_base = time.perf_counter()
        self._ktick = 0
        self._kbatch_start_wall: Optional[float] = None

    # -- attachment -----------------------------------------------------

    def attach(self) -> "Tracer":
        """Install as ``sim.tracer`` so instrumented code can find us."""
        self.sim.tracer = self
        return self

    def detach(self) -> None:
        if getattr(self.sim, "tracer", None) is self:
            self.sim.tracer = None

    # -- clock ----------------------------------------------------------

    def _now_us(self) -> float:
        return self.sim.now * 1e6

    def _wall_us(self) -> float:
        return (time.perf_counter() - self._wall_base) * 1e6

    # -- lanes ----------------------------------------------------------

    def lane(self, process: str, thread: str) -> Lane:
        """Get-or-create the lane for (process, thread)."""
        key = (process, thread)
        lane = self._lanes.get(key)
        if lane is None:
            pid = self._pids.get(process)
            if pid is None:
                pid = self._pids[process] = len(self._pids) + 1
                self._next_tid[pid] = 0
            self._next_tid[pid] += 1
            lane = Lane(pid, self._next_tid[pid], process, thread)
            self._lanes[key] = lane
        return lane

    def lanes(self) -> List[Lane]:
        return list(self._lanes.values())

    def kernel_lane(self) -> Lane:
        return self.lane(self.KERNEL_PROCESS, "dispatch")

    # -- emission --------------------------------------------------------

    def begin_span(self, lane: Lane, name: str,
                   args: Optional[Dict[str, Any]] = None) -> Optional[Span]:
        """Open a span at the current simulated time; ``None`` if disabled."""
        if not self.enabled:
            return None
        span = Span(self, lane, name, self._now_us(), args)
        self._open[id(span)] = span
        return span

    def span(self, lane: Lane, name: str,
             args: Optional[Dict[str, Any]] = None) -> "_SyncSpan":
        """Context manager variant for spans that do not cross a yield."""
        return _SyncSpan(self.begin_span(lane, name, args))

    def open_spans(self) -> List[Span]:
        """Spans begun but never ended (leaked or still in flight)."""
        return list(self._open.values())

    def instant(self, lane: Lane, name: str,
                args: Optional[Dict[str, Any]] = None) -> None:
        if not self.enabled:
            return
        self._events.append((_INSTANT, lane, name, self._now_us(), args))

    def counter(self, lane: Lane, name: str, series: Dict[str, float],
                ts_us: Optional[float] = None) -> None:
        """One sample of a counter track (stacked series in Perfetto)."""
        if not self.enabled:
            return
        self._events.append((_COUNTER, lane, name,
                             self._now_us() if ts_us is None else ts_us, series))

    # -- kernel hook -----------------------------------------------------

    def _kernel_tick(self, sim, callback) -> None:
        """Called by the traced simulator loop after every dispatched event.

        Emits a wall-clock batch span + counter sample every
        ``kernel_sample_every`` events, and (verbose mode) a per-dispatch
        instant naming the callback.
        """
        lane = self.kernel_lane()
        if self.kernel_dispatch:
            name = getattr(callback, "__qualname__", None) or repr(callback)
            self._events.append((_INSTANT, lane, f"dispatch:{name}",
                                 self._wall_us(), None))
        self._ktick += 1
        if self._kbatch_start_wall is None:
            self._kbatch_start_wall = self._wall_us()
        if self._ktick % self.kernel_sample_every:
            return
        now_wall = self._wall_us()
        self._events.append((
            _SPAN, lane, "dispatch-batch", self._kbatch_start_wall,
            now_wall - self._kbatch_start_wall,
            {"events": self.kernel_sample_every, "sim_now_s": sim.now},
        ))
        self._kbatch_start_wall = now_wall
        self._events.append((_COUNTER, self.lane(self.KERNEL_PROCESS, "counters"),
                             "sim.events_processed", now_wall,
                             {"events": sim.events_processed}))

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[Tuple]:
        """The raw event records (exporters consume these)."""
        return self._events

    def span_count(self, lane: Optional[Lane] = None) -> int:
        return sum(1 for e in self._events
                   if e[0] == _SPAN and (lane is None or e[1] is lane))
