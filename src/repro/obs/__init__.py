"""Observability: tracing + metrics for every layer of the stack.

The evaluation lives on attributing every microsecond of blackout and WBS
drain to a phase; this package is the substrate that makes that possible
without ad-hoc printf archaeology:

- :class:`Tracer` (:mod:`repro.obs.tracer`) — spans and instant events on
  simulated time, organised into node → QP/engine/WBS/migration-phase
  lanes, with a wall-clock lane for the simulation kernel itself.  Attach
  one to a :class:`~repro.sim.Simulator` (``Tracer(sim).attach()``) and
  the instrumented layers (sim kernel, RNIC engines, verbs, WBS,
  orchestrator, CRIU) start emitting.  A simulator without a tracer pays
  one attribute load + None test per instrumentation point, and an
  attached tracer never changes simulated timestamps or the RNG stream.
- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — named counters,
  gauges and histograms unifying the stack's pre-existing ad-hoc counters
  (NIC bytes, kernel events, translation-cache hits, WBS drain counts)
  under one snapshot.
- exporters (:mod:`repro.obs.export`) — Chrome trace-event JSON loadable
  in Perfetto / ``chrome://tracing``, and a plain-text timeline summary.

Quick use::

    from repro.obs import MetricsRegistry, Tracer, write_chrome_trace

    tracer = Tracer(tb.sim).attach()
    ... run the experiment ...
    metrics = MetricsRegistry()
    metrics.scrape_testbed(tb, world)
    write_chrome_trace(tracer, "trace.json", metrics=metrics)
"""

from repro.obs.export import chrome_trace_events, timeline_summary, write_chrome_trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import Lane, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Lane",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "timeline_summary",
    "write_chrome_trace",
]
