"""Named counters, gauges and histograms — one registry per experiment.

Before this subsystem existed every layer grew its own ad-hoc counters:
the RNIC's ``tx_bytes``/``rx_bytes``, ``Simulator.events_processed``, the
rkey cache's ``hits``/``misses``, the WBS thread's drain counts.  Those
remain where they are (they are part of the models), but the registry
gives them one namespace, one snapshot, and one text rendering:
:meth:`MetricsRegistry.scrape_*` pulls the current values in under stable
dotted names, so exporters and the CLI report the whole stack uniformly.

Histograms keep raw observations (simulations observe thousands, not
billions, of samples) and compute percentiles by linear interpolation
between closest ranks.
"""

from __future__ import annotations

from bisect import insort
from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically-increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A distribution of observations with exact percentile queries."""

    __slots__ = ("name", "_sorted", "sum")

    def __init__(self, name: str):
        self.name = name
        self._sorted: List[float] = []
        self.sum = 0.0

    def observe(self, value: float) -> None:
        insort(self._sorted, value)
        self.sum += value

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def min(self) -> float:
        if not self._sorted:
            raise ValueError(f"histogram {self.name} is empty")
        return self._sorted[0]

    @property
    def max(self) -> float:
        if not self._sorted:
            raise ValueError(f"histogram {self.name} is empty")
        return self._sorted[-1]

    @property
    def mean(self) -> float:
        if not self._sorted:
            raise ValueError(f"histogram {self.name} is empty")
        return self.sum / len(self._sorted)

    def percentile(self, p: float) -> float:
        """The p-th percentile (0..100), linearly interpolated."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        data = self._sorted
        if not data:
            raise ValueError(f"histogram {self.name} is empty")
        if len(data) == 1:
            return data[0]
        rank = p / 100.0 * (len(data) - 1)
        lo = int(rank)
        frac = rank - lo
        if frac == 0.0:
            return data[lo]
        return data[lo] + (data[lo + 1] - data[lo]) * frac

    def summary(self) -> Dict[str, float]:
        if not self._sorted:
            return {"count": 0}
        return {
            "count": self.count, "sum": self.sum, "min": self.min,
            "max": self.max, "mean": self.mean,
            "p50": self.percentile(50), "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Get-or-create registry of named metrics, plus model scrapers."""

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"requested {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    # -- scrapers: unify the stack's pre-existing ad-hoc counters --------

    def scrape_sim(self, sim) -> None:
        self.gauge("sim.events_processed").set(sim.events_processed)
        self.gauge("sim.now_s").set(sim.now)
        self.gauge("sim.failed_processes").set(len(sim.failed_processes))

    def scrape_nic(self, nic, prefix: Optional[str] = None) -> None:
        prefix = prefix or f"rnic.{nic.node.name}"
        self.gauge(f"{prefix}.tx_bytes").set(nic.tx_bytes)
        self.gauge(f"{prefix}.rx_bytes").set(nic.rx_bytes)
        self.gauge(f"{prefix}.tx_msgs").set(nic.tx_msgs)
        self.gauge(f"{prefix}.rx_msgs").set(nic.rx_msgs)
        self.gauge(f"{prefix}.qps").set(len(nic.qps))
        if nic.qos is not None:
            # Tenant QoS is part of the digested surface when installed:
            # metered bytes and throttle counts are results of the run.
            # Runs without QoS (nic.qos is None) emit nothing here, so
            # every pre-existing digest pin is untouched.
            for tenant, state in nic.qos.snapshot().items():
                qprefix = f"{prefix}.tenant.{tenant}"
                self.gauge(f"{qprefix}.tx_bytes").set(state["tx_bytes"])
                self.gauge(f"{qprefix}.msgs").set(state["reserved_msgs"])
                self.gauge(f"{qprefix}.qps").set(state["qps"])
                self.gauge(f"{qprefix}.throttle_events").set(
                    state["throttle_events"])
                self.gauge(f"{qprefix}.throttle_s").set(state["throttle_s"])
                self.gauge(f"{qprefix}.qp_denials").set(state["qp_denials"])

    def scrape_network(self, network) -> None:
        self.gauge("fabric.messages_sent").set(network.messages_sent)
        self.gauge("fabric.messages_dropped").set(network.messages_dropped)

    def scrape_lib(self, lib, prefix: Optional[str] = None) -> None:
        """One MigrRDMA guest lib: translation-cache and WBS/replay counts."""
        prefix = prefix or f"lib.pid{lib.process.pid}"
        self.gauge(f"{prefix}.rkey_cache_hits").set(lib.rkey_cache.hits)
        self.gauge(f"{prefix}.rkey_cache_misses").set(lib.rkey_cache.misses)
        self.gauge(f"{prefix}.fetch_rpcs").set(lib.fetch_rpcs)
        self.gauge(f"{prefix}.demand_fetches").set(lib.demand_fetches)
        self.gauge(f"{prefix}.wrs_intercepted").set(lib.wrs_intercepted)
        self.gauge(f"{prefix}.wrs_replayed").set(lib.wrs_replayed)
        self.gauge(f"{prefix}.wbs_absorbed_cqes").set(lib.wbs.absorbed_cqes)

    def scrape_testbed(self, tb, world=None) -> None:
        """Everything at once: kernel, fabric, every NIC, every guest lib."""
        self.scrape_sim(tb.sim)
        self.scrape_network(tb.network)
        for server in tb.servers:
            self.scrape_nic(server.rnic)
        if world is not None:
            for lib in world.all_libs():
                self.scrape_lib(lib)
            stats = getattr(world.control, "stats", None)
            if stats is not None:
                for name, value in stats.as_dict().items():
                    self.gauge(f"resilience.{name}").set(value)
            # Heartbeat-detector behaviour (per-peer misses, suspicion
            # transitions, flap count) is part of the digested surface:
            # all three are simulated-time event counts, never wall-clock
            # quantities.  Peers whose counters are all zero emit nothing,
            # so fault-free runs keep their pre-existing digests
            # byte-identical (same trick as the tenant-QoS gauges above).
            detector_stats = getattr(world.control, "detector_stats", None)
            if detector_stats:
                for peer, counts in sorted(detector_stats.items()):
                    if not any(counts.values()):
                        continue
                    for key in ("misses", "suspicions", "flaps"):
                        self.gauge(
                            f"resilience.detector.{peer}.{key}"
                        ).set(counts[key])

    def scrape_fleet(self, fleet) -> None:
        """Fleet state store + fat-tree trunk accounting.

        Part of the digested surface (unlike :meth:`scrape_perf`): where
        containers ended up and how many bytes crossed each trunk are
        *results* of a fleet run, so same-seed runs must agree on them
        bit-for-bit across ``--jobs`` settings.
        """
        state = fleet.state
        self.gauge("fleet.hosts").set(len(state.hosts))
        self.gauge("fleet.containers").set(len(state.containers))
        self.gauge("fleet.draining").set(len(state.draining))
        for name in state.hosts:
            self.gauge(f"fleet.host.{name}.containers").set(state.load(name))
            self.gauge(f"fleet.host.{name}.qps").set(state.qp_usage(name))
        topology = getattr(fleet, "topology", None)
        if topology is not None:
            for link, port in topology.trunk_ports().items():
                self.gauge(f"fleet.link.{link}.bytes").set(port.bytes_sent)

    def scrape_chaos(self, plan) -> None:
        """Injection counters from a :class:`repro.chaos.FaultPlan`."""
        for name, value in plan.stats.as_dict().items():
            self.gauge(f"chaos.{name}").set(value)
        self.gauge("chaos.rules").set(len(plan.rules))
        self.gauge("chaos.boundaries_seen").set(len(plan.boundaries_seen))

    def scrape_perf(self, tb) -> None:
        """Opt-in speed-path counters: scheduler occupancy/routing and
        express-lane (flow aggregation) activity.

        Deliberately **not** part of :meth:`scrape_testbed`: the chaos run
        digest hashes the default snapshot, and these counters describe how
        fast a run went, not what it computed — they differ between the
        wheel and heap schedulers (and between flow aggregation on/off)
        while every digested metric stays bit-identical.  Keeping them in a
        separate scrape preserves those cross-mode digest pins.
        """
        sim = tb.sim
        for name, value in sim.scheduler_stats().items():
            if name == "scheduler":
                continue
            self.gauge(f"sched.{name}").set(value)
        self.gauge("sched.events_credited").set(sim.events_credited)
        for server in tb.servers:
            nic = server.rnic
            prefix = f"flow.{nic.node.name}"
            self.gauge(f"{prefix}.expressed").set(nic.flow_expressed)
            self.gauge(f"{prefix}.fallbacks").set(nic.flow_fallbacks)
            self.gauge(f"{prefix}.materialized").set(nic.flow_materialized)

    # -- output ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain dict of every metric (histograms become summary dicts)."""
        out: Dict[str, Any] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def render(self) -> str:
        """Aligned text table of the snapshot."""
        rows = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                inner = " ".join(f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}"
                                 for k, v in value.items())
                rows.append((name, inner))
            elif isinstance(value, float):
                rows.append((name, f"{value:.6g}"))
            else:
                rows.append((name, str(value)))
        if not rows:
            return "(no metrics)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)
