"""Trace exporters: Chrome trace-event JSON (Perfetto) and text timelines.

``chrome_trace_events`` turns a :class:`~repro.obs.tracer.Tracer`'s records
into the Chrome trace-event format — the JSON that ``chrome://tracing`` and
https://ui.perfetto.dev load directly.  Model lanes carry simulated-time
timestamps (microseconds, which the format natively expects); the kernel's
lane carries wall-clock microseconds since tracer creation.  Each lane
maps onto a (pid, tid) pair with ``process_name``/``thread_name`` metadata
so Perfetto shows human-readable tracks grouped by node / subsystem.

``timeline_summary`` renders the same records as an aligned plain-text
report: per-lane span statistics plus the chronological list of the
longest spans — the quick look before reaching for Perfetto.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.tracer import Tracer, _COUNTER, _INSTANT, _SPAN

__all__ = ["chrome_trace_events", "write_chrome_trace", "timeline_summary"]


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The tracer's records as a list of Chrome trace-event dicts."""
    events: List[Dict[str, Any]] = []
    # Metadata first: readable process/thread names and stable sort order.
    for lane in tracer.lanes():
        events.append({"ph": "M", "name": "process_name", "pid": lane.pid,
                       "tid": 0, "args": {"name": lane.process}})
        events.append({"ph": "M", "name": "process_sort_index", "pid": lane.pid,
                       "tid": 0, "args": {"sort_index": lane.pid}})
        events.append({"ph": "M", "name": "thread_name", "pid": lane.pid,
                       "tid": lane.tid, "args": {"name": lane.thread}})
        events.append({"ph": "M", "name": "thread_sort_index", "pid": lane.pid,
                       "tid": lane.tid, "args": {"sort_index": lane.tid}})
    for record in tracer.events():
        kind, lane = record[0], record[1]
        if kind == _SPAN:
            _kind, _lane, name, start_us, dur_us, args = record
            event = {"ph": "X", "name": name, "pid": lane.pid, "tid": lane.tid,
                     "ts": start_us, "dur": dur_us, "cat": lane.process}
            if args:
                event["args"] = args
            events.append(event)
        elif kind == _INSTANT:
            _kind, _lane, name, ts_us, args = record
            event = {"ph": "i", "name": name, "pid": lane.pid, "tid": lane.tid,
                     "ts": ts_us, "s": "t", "cat": lane.process}
            if args:
                event["args"] = args
            events.append(event)
        elif kind == _COUNTER:
            _kind, _lane, name, ts_us, series = record
            events.append({"ph": "C", "name": name, "pid": lane.pid,
                           "tid": lane.tid, "ts": ts_us, "args": dict(series)})
    # Unended spans (leaked or still in flight): emit open B events so the
    # timeline still shows where they started.
    for span in tracer.open_spans():
        lane = span._lane
        event = {"ph": "B", "name": span.name, "pid": lane.pid, "tid": lane.tid,
                 "ts": span.start_us, "cat": lane.process}
        if span.args:
            event["args"] = span.args
        events.append(event)
    return events


def write_chrome_trace(tracer: Tracer, path, metrics=None) -> Dict[str, Any]:
    """Write ``{"traceEvents": [...]}`` JSON to ``path``; returns the dict.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) lands in
    ``otherData`` so the final counter values travel with the timeline.
    """
    document: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        document["otherData"] = {"metrics": metrics.snapshot()}
    with open(path, "w") as handle:
        json.dump(document, handle)
    return document


def timeline_summary(tracer: Tracer, metrics=None, top: int = 20) -> str:
    """Plain-text report: per-lane span stats + the longest spans."""
    per_lane: Dict[Any, Dict[str, float]] = {}
    spans: List[tuple] = []
    instants = 0
    for record in tracer.events():
        kind, lane = record[0], record[1]
        if kind == _SPAN:
            _k, _l, name, start_us, dur_us, _args = record
            stats = per_lane.setdefault(
                lane, {"spans": 0, "busy_us": 0.0, "instants": 0})
            stats["spans"] += 1
            stats["busy_us"] += dur_us
            spans.append((start_us, dur_us, lane, name))
        elif kind == _INSTANT:
            stats = per_lane.setdefault(
                lane, {"spans": 0, "busy_us": 0.0, "instants": 0})
            stats["instants"] += 1
            instants += 1

    lines: List[str] = []
    lines.append("lanes:")
    lines.append(f"  {'lane':<34}{'spans':>8}{'busy_ms':>10}{'instants':>10}")
    for lane, stats in sorted(per_lane.items(), key=lambda kv: (kv[0].pid, kv[0].tid)):
        label = f"{lane.process}/{lane.thread}"
        lines.append(f"  {label:<34}{int(stats['spans']):>8}"
                     f"{stats['busy_us'] / 1e3:>10.3f}{int(stats['instants']):>10}")
    if spans:
        lines.append("")
        lines.append(f"longest {min(top, len(spans))} spans:")
        lines.append(f"  {'t_start_ms':>12}{'dur_ms':>10}  span")
        for start_us, dur_us, lane, name in sorted(
                spans, key=lambda s: -s[1])[:top]:
            lines.append(f"  {start_us / 1e3:>12.3f}{dur_us / 1e3:>10.3f}  "
                         f"{lane.process}/{lane.thread}: {name}")
    if metrics is not None:
        lines.append("")
        lines.append("metrics:")
        for row in metrics.render().splitlines():
            lines.append(f"  {row}")
    return "\n".join(lines)
