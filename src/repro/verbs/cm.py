"""Connection manager: the librdmacm analogue.

Real RDMA applications rarely hand-roll their out-of-band exchange; they
use rdma_cm: a passive side listens on an address/port, an active side
connects, and the CM carries QPNs (plus application ``private_data``,
typically buffer addresses and rkeys) over a TCP-like channel and drives
the QP state transitions.

This CM works over any :class:`~repro.verbs.api.VerbsAPI` implementation.
Under the MigrRDMA guest library the exchange naturally carries *virtual*
QPNs and *virtual* rkeys — exactly the out-of-band channel §3.3 says the
RDMA stack is unaware of — so CM-established connections are migratable
with no application changes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.cluster import Testbed
from repro.fabric import TcpChannel
from repro.rnic import QPType
from repro.verbs.api import VerbsAPI

_conn_tokens = itertools.count(1)

CM_REQ_BYTES = 256  # MAD-sized request carrying QPN + private data
CM_POLL_S = 50e-6


class CmError(Exception):
    """Connection-manager failures (no listener, rejected, timeout)."""


@dataclass
class CmConnection:
    """One established connection as seen by either side."""

    qp: object
    local_node: str
    remote_node: str
    port: int
    remote_qpn: int
    #: application payload from the peer's connect/accept call
    remote_private_data: Any = None


@dataclass
class _Listener:
    lib: VerbsAPI
    pd: object
    cq: object
    max_send_wr: int
    max_recv_wr: int
    #: called with the new CmConnection once established (optional)
    on_connect: Optional[Callable[[CmConnection], None]] = None
    #: returns the private data to send back to the connecting side
    private_data_factory: Optional[Callable[[], Any]] = None
    accepted: list = field(default_factory=list)


class ConnectionManager:
    """Testbed-wide CM service: listeners, connect/accept rendezvous.

    One instance serves every server; it keeps its own TCP channels (a
    fresh channel per pair, so it never collides with the MigrRDMA control
    plane or the migration transfers sharing the fabric).
    """

    def __init__(self, tb: Testbed):
        self.tb = tb
        self.sim = tb.sim
        self._listeners: Dict[Tuple[str, int], _Listener] = {}
        self._pending: Dict[int, dict] = {}  # token -> accept outcome
        self._channels: Dict[Tuple[str, str], TcpChannel] = {}

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _channel(self, a: str, b: str) -> TcpChannel:
        key = (min(a, b), max(a, b))
        channel = self._channels.get(key)
        if channel is None:
            channel = TcpChannel(self.tb.network, key[0], key[1])
            channel.set_rpc_handler(self._dispatch)
            self._channels[key] = channel
        return channel

    def _dispatch(self, request: dict):
        op = request["op"]
        if op == "connect":
            return self._handle_connect(request), CM_REQ_BYTES
        if op == "status":
            return self._pending.get(request["token"], {"state": "unknown"}), CM_REQ_BYTES
        raise ValueError(f"unknown CM op {op!r}")

    # ------------------------------------------------------------------
    # passive side
    # ------------------------------------------------------------------

    def listen(self, node: str, port: int, lib: VerbsAPI, pd, cq,
               max_send_wr: int = 64, max_recv_wr: int = 64,
               on_connect: Optional[Callable[[CmConnection], None]] = None,
               private_data_factory: Optional[Callable[[], Any]] = None) -> _Listener:
        """Bind a listener; incoming connects create+connect a QP on it."""
        key = (node, port)
        if key in self._listeners:
            raise CmError(f"port {port} already bound on {node}")
        listener = _Listener(lib=lib, pd=pd, cq=cq, max_send_wr=max_send_wr,
                             max_recv_wr=max_recv_wr, on_connect=on_connect,
                             private_data_factory=private_data_factory)
        self._listeners[key] = listener
        return listener

    def unlisten(self, node: str, port: int) -> None:
        self._listeners.pop((node, port), None)

    def _handle_connect(self, request: dict) -> dict:
        key = (request["dst"], request["port"])
        listener = self._listeners.get(key)
        if listener is None:
            return {"state": "rejected", "reason": f"no listener on {key}"}
        token = next(_conn_tokens)
        self._pending[token] = {"state": "pending"}
        self.sim.spawn(
            self._accept(listener, token, request),
            name=f"cm-accept:{request['dst']}:{request['port']}")
        return {"state": "accepting", "token": token}

    def _accept(self, listener: _Listener, token: int, request: dict):
        lib = listener.lib
        try:
            qp = yield from lib.create_qp(
                listener.pd, QPType.RC, listener.cq, listener.cq,
                listener.max_send_wr, listener.max_recv_wr)
            yield from lib.connect(qp, request["src"], request["qpn"])
        except Exception as error:  # surface as a rejection, not a crash
            self._pending[token] = {"state": "rejected", "reason": str(error)}
            return
        private = (listener.private_data_factory()
                   if listener.private_data_factory is not None else None)
        connection = CmConnection(
            qp=qp, local_node=request["dst"], remote_node=request["src"],
            port=request["port"], remote_qpn=request["qpn"],
            remote_private_data=request.get("private_data"))
        listener.accepted.append(connection)
        if listener.on_connect is not None:
            listener.on_connect(connection)
        self._pending[token] = {"state": "established", "qpn": qp.qpn,
                                "private_data": private}

    # ------------------------------------------------------------------
    # active side
    # ------------------------------------------------------------------

    def connect(self, node: str, remote_node: str, port: int, lib: VerbsAPI,
                pd, cq, max_send_wr: int = 64, max_recv_wr: int = 64,
                private_data: Any = None, timeout_s: float = 1.0):
        """Generator: establish a connection; returns a :class:`CmConnection`.

        Creates the local QP first (so its QPN travels in the request),
        waits for the passive side to accept, then transitions to RTS.
        """
        qp = yield from lib.create_qp(pd, QPType.RC, cq, cq,
                                      max_send_wr, max_recv_wr)
        channel = self._channel(node, remote_node)
        response = yield from channel.rpc(
            {"op": "connect", "src": node, "dst": remote_node, "port": port,
             "qpn": qp.qpn, "private_data": private_data},
            req_size=CM_REQ_BYTES, src=node)
        if response["state"] == "rejected":
            raise CmError(f"connect to {remote_node}:{port} rejected: "
                          f"{response.get('reason')}")
        token = response["token"]
        deadline = self.sim.now + timeout_s
        while True:
            status = yield from channel.rpc(
                {"op": "status", "token": token}, req_size=64, src=node)
            if status["state"] == "established":
                break
            if status["state"] == "rejected":
                raise CmError(f"connect to {remote_node}:{port} rejected: "
                              f"{status.get('reason')}")
            if self.sim.now > deadline:
                raise CmError(f"connect to {remote_node}:{port} timed out")
            yield self.sim.timeout(CM_POLL_S)
        yield from lib.connect(qp, remote_node, status["qpn"])
        return CmConnection(
            qp=qp, local_node=node, remote_node=remote_node, port=port,
            remote_qpn=status["qpn"], remote_private_data=status["private_data"])
