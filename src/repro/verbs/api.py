"""The verbs API surface and its direct (non-virtualized) implementation.

Conventions
-----------
- Control-path methods are **generators**: callers ``yield from`` them
  inside a simulated process, because they involve firmware commands with
  real latency (the reason RDMA pre-setup matters at all).
- Data-path methods are **plain functions**: posting and polling are
  synchronous userspace operations; their cost is charged to the process's
  CPU cycle ledger.
- Applications must only use what this interface returns (`.qpn`, `.lkey`,
  `.rkey`, completions from ``poll_cq``); the MigrRDMA guest lib returns
  virtualized handles through the very same surface.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster import AppProcess
from repro.rnic import (
    CQ,
    MR,
    PD,
    QP,
    RNIC,
    SGE,
    SRQ,
    AccessFlags,
    CompletionChannel,
    DeviceMemory,
    MemoryWindow,
    Opcode,
    QPState,
    QPType,
    RecvWR,
    SendWR,
    WorkCompletion,
)

#: Cycle ledger label per posted opcode (Table 4's four operations).
_OP_LABEL = {
    Opcode.SEND: "send",
    Opcode.SEND_WITH_IMM: "send",
    Opcode.RDMA_WRITE: "write",
    Opcode.RDMA_WRITE_WITH_IMM: "write",
    Opcode.RDMA_READ: "read",
    Opcode.ATOMIC_CMP_AND_SWP: "write",
    Opcode.ATOMIC_FETCH_AND_ADD: "write",
    Opcode.BIND_MW: "send",
}


class VerbsAPI:
    """Abstract verbs surface shared by the direct and MigrRDMA libraries."""

    # control path ---------------------------------------------------------
    def alloc_pd(self):
        raise NotImplementedError

    def reg_mr(self, pd, addr: int, length: int, access: AccessFlags):
        raise NotImplementedError

    def dereg_mr(self, mr):
        raise NotImplementedError

    def create_comp_channel(self):
        raise NotImplementedError

    def create_cq(self, depth: int, channel=None):
        raise NotImplementedError

    def create_srq(self, pd, max_wr: int):
        raise NotImplementedError

    def create_qp(self, pd, qp_type: QPType, send_cq, recv_cq,
                  max_send_wr: int, max_recv_wr: int, srq=None,
                  tenant: Optional[str] = None):
        raise NotImplementedError

    def modify_qp_to_init(self, qp):
        raise NotImplementedError

    def modify_qp_to_rtr(self, qp, remote_node: Optional[str] = None,
                         remote_qpn: Optional[int] = None):
        raise NotImplementedError

    def modify_qp_to_rts(self, qp):
        raise NotImplementedError

    def destroy_qp(self, qp):
        raise NotImplementedError

    def alloc_mw(self, pd):
        raise NotImplementedError

    def alloc_dm(self, length: int):
        raise NotImplementedError

    def reg_dm_mr(self, pd, dm, access: AccessFlags):
        raise NotImplementedError

    def connect(self, qp, remote_node: str, remote_qpn: int):
        """Convenience: INIT -> RTR -> RTS."""
        yield from self.modify_qp_to_init(qp)
        yield from self.modify_qp_to_rtr(qp, remote_node, remote_qpn)
        yield from self.modify_qp_to_rts(qp)

    # data path ---------------------------------------------------------------
    def post_send(self, qp, wr: SendWR) -> None:
        raise NotImplementedError

    def post_send_wrs(self, qp, wrs: List[SendWR]) -> None:
        """Post a chain of send WRs (``ibv_post_send`` WR-list semantics).

        Implementations that support batched doorbells override this; the
        default preserves exact per-WR semantics by posting sequentially.
        """
        for wr in wrs:
            self.post_send(qp, wr)

    def post_recv(self, qp, wr: RecvWR) -> None:
        raise NotImplementedError

    def post_srq_recv(self, srq, wr: RecvWR) -> None:
        raise NotImplementedError

    def poll_cq(self, cq, max_entries: int = 1) -> List[WorkCompletion]:
        raise NotImplementedError

    def req_notify_cq(self, cq) -> None:
        raise NotImplementedError

    def get_cq_event(self, channel):
        """Generator: waits for the next completion event on the channel."""
        raise NotImplementedError

    def ack_cq_events(self, channel, count: int = 1) -> None:
        raise NotImplementedError


class DirectVerbs(VerbsAPI):
    """The unmodified RDMA library+driver: straight to the NIC."""

    def __init__(self, process: AppProcess, rnic: RNIC):
        self.process = process
        self.rnic = rnic
        self.sim = rnic.sim

    # -- control path -------------------------------------------------------

    def alloc_pd(self):
        pd = yield from self.rnic.alloc_pd()
        return pd

    def reg_mr(self, pd: PD, addr: int, length: int, access: AccessFlags):
        mr = yield from self.rnic.reg_mr(pd, self.process.space, addr, length, access)
        return mr

    def dereg_mr(self, mr: MR):
        yield from self.rnic.dereg_mr(mr)

    def create_comp_channel(self):
        channel = yield from self.rnic.create_comp_channel()
        return channel

    def create_cq(self, depth: int, channel: Optional[CompletionChannel] = None):
        cq = yield from self.rnic.create_cq(depth, channel)
        return cq

    def create_srq(self, pd: PD, max_wr: int):
        srq = yield from self.rnic.create_srq(pd, max_wr)
        return srq

    def create_qp(self, pd: PD, qp_type: QPType, send_cq: CQ, recv_cq: CQ,
                  max_send_wr: int, max_recv_wr: int, srq: Optional[SRQ] = None,
                  max_rd_atomic: int = 16, max_inline_data: int = 220,
                  tenant: Optional[str] = None):
        qp = yield from self.rnic.create_qp(
            pd, qp_type, send_cq, recv_cq, max_send_wr, max_recv_wr, srq=srq,
            max_rd_atomic=max_rd_atomic, max_inline_data=max_inline_data,
            tenant=tenant)
        return qp

    def modify_qp_to_init(self, qp: QP):
        yield from self.rnic.modify_qp(qp, QPState.INIT)

    def modify_qp_to_rtr(self, qp: QP, remote_node: Optional[str] = None,
                         remote_qpn: Optional[int] = None):
        yield from self.rnic.modify_qp(qp, QPState.RTR, remote_node, remote_qpn)

    def modify_qp_to_rts(self, qp: QP):
        yield from self.rnic.modify_qp(qp, QPState.RTS)

    def destroy_qp(self, qp: QP):
        yield from self.rnic.destroy_qp(qp)

    def alloc_mw(self, pd: PD):
        mw = yield from self.rnic.alloc_mw(pd)
        return mw

    def alloc_dm(self, length: int):
        """Allocate on-chip memory and map it into the process (§3.3)."""
        dm = yield from self.rnic.alloc_dm(length)
        vma = self.process.space.mmap(length, tag="on-chip", name=f"dm{dm.handle}")
        dm.mapped_addr = vma.start
        return dm

    def reg_dm_mr(self, pd: PD, dm: DeviceMemory, access: AccessFlags):
        if dm.mapped_addr is None:
            raise ValueError("device memory is not mapped")
        mr = yield from self.rnic.reg_mr(
            pd, self.process.space, dm.mapped_addr, dm.length, access, on_chip=True)
        return mr

    # -- data path ---------------------------------------------------------------

    def post_send(self, qp: QP, wr: SendWR) -> None:
        self.process.cpu.charge_base(_OP_LABEL[wr.opcode])
        if wr.inline and wr.inline_data is None:
            capture_inline(self.process, qp, wr)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(tracer.lane(self.rnic.node.name, "verbs"),
                           f"post:{_OP_LABEL[wr.opcode]}",
                           {"qpn": qp.qpn, "bytes": wr.total_length})
        self.rnic.post_send(qp, wr)

    def post_send_wrs(self, qp: QP, wrs: List[SendWR]) -> None:
        """WR-chain post: per-WR userspace cost, one NIC doorbell."""
        cpu = self.process.cpu
        for wr in wrs:
            cpu.charge_base(_OP_LABEL[wr.opcode])
            if wr.inline and wr.inline_data is None:
                capture_inline(self.process, qp, wr)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(tracer.lane(self.rnic.node.name, "verbs"),
                           "post:chain", {"qpn": qp.qpn, "wrs": len(wrs)})
        self.rnic.post_send_wrs(qp, wrs)

    def post_recv(self, qp: QP, wr: RecvWR) -> None:
        self.process.cpu.charge_base("recv")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(tracer.lane(self.rnic.node.name, "verbs"),
                           "post:recv", {"qpn": qp.qpn})
        self.rnic.post_recv(qp, wr)

    def post_srq_recv(self, srq: SRQ, wr: RecvWR) -> None:
        self.process.cpu.charge_base("recv")
        self.rnic.post_srq_recv(srq, wr)

    def poll_cq(self, cq: CQ, max_entries: int = 1) -> List[WorkCompletion]:
        self.process.cpu.charge_base("poll")
        wcs = cq.poll(max_entries)
        if wcs:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(tracer.lane(self.rnic.node.name, "verbs"),
                               "poll", {"cqn": cq.handle, "n": len(wcs)})
        return wcs

    def req_notify_cq(self, cq: CQ) -> None:
        cq.req_notify()

    def get_cq_event(self, channel: CompletionChannel):
        cq = yield channel.get_cq_event()
        return cq

    def ack_cq_events(self, channel: CompletionChannel, count: int = 1) -> None:
        channel.ack_events(count)


def capture_inline(process, qp, wr: SendWR) -> None:
    """Copy an inline WR's payload out of the application buffer at post
    time (IBV_SEND_INLINE semantics: no lkey needed, buffer reusable)."""
    if not (wr.opcode.is_two_sided or wr.opcode in (
            Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_WITH_IMM)):
        raise ValueError("inline is only valid for SEND and RDMA WRITE")
    total = wr.total_length
    limit = getattr(qp, "max_inline_data", None)
    if limit is None:  # virtual QP wrapper: ask the physical QP
        limit = qp._phys.max_inline_data
    if total > limit:
        raise ValueError(f"inline payload {total} exceeds max_inline_data {limit}")
    wr.inline_data = b"".join(
        process.space.read(sge.addr, sge.length) for sge in wr.sges)


def make_sge(mr, offset: int, length: int) -> SGE:
    """An SGE into ``mr`` at ``offset`` — works for direct and virtual MRs."""
    if offset < 0 or offset + length > mr.length:
        raise ValueError(f"SGE [{offset}, {offset + length}) outside MR of length {mr.length}")
    return SGE(addr=mr.addr + offset, length=length, lkey=mr.lkey)
