"""ibverbs-style user API over the RNIC model.

:class:`~repro.verbs.api.DirectVerbs` is the unmodified "Mellanox OFED
library + driver" path: control-path calls are generators (they take
firmware-command time), data-path calls are plain functions that charge CPU
cycles to the owning process.  MigrRDMA's guest library
(:mod:`repro.core.guest_lib`) implements the same surface with its
indirection underneath, so applications are written once against
:class:`~repro.verbs.api.VerbsAPI` and run unchanged in either world —
that is the paper's transparency requirement.
"""

from repro.verbs.api import DirectVerbs, VerbsAPI
from repro.verbs.cm import CmConnection, CmError, ConnectionManager

__all__ = ["CmConnection", "CmError", "ConnectionManager", "DirectVerbs", "VerbsAPI"]
