"""Command-line experiment runner: regenerate paper tables without pytest.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig3 [--qps 16,64] [--migrate sender] [--jobs 4]
    python -m repro.experiments fig4 [--sweep msgsize] [--jobs 4]
    python -m repro.experiments fig5 [--migrate receiver]
    python -m repro.experiments table4 [--jobs 4]
    python -m repro.experiments fig6 [--task dfsio] [--fast] [--jobs 3]
    python -m repro.experiments migros [--qps 16,64,256] [--jobs 4]
    python -m repro.experiments trace [--qps 8] [--out trace.json]
    python -m repro.experiments kv [--seed 7] [--noise off,40,unshaped] [--jobs 3]
    python -m repro.experiments torture [--seed 7] [--runs 25] [--app kv] [--jobs 4]
    python -m repro.experiments recovery [--kill-dest-at precopy-dumped] [--jobs 2]
    python -m repro.experiments fleet [--hosts 8 --racks 2] [--policy drain
        --target rack0] [--concurrency 1,2,4] [--kill-host r0h0] [--jobs 3]

Every sweep command takes ``--jobs N`` (0 = all cores) and fans its
independent simulation points over a spawn worker pool via
``repro.parallel``; results are merged in sweep order and are
bit-identical to a ``--jobs 1`` run (see DESIGN.md §10).

``python -m repro.experiments --profile <command> ...`` runs the command
under :mod:`cProfile` and dumps the top 30 functions (by cumulative and
by internal time) to stderr — the quick way to find the hot path behind
a ``BENCH_simperf.json`` regression.  Profile with ``--jobs 1``: spawn
workers run outside the profiled process.

The pytest benchmarks under ``benchmarks/`` remain the canonical
reproduction (they also assert the paper's shape claims); this runner is
the quick way to eyeball one experiment.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.config import default_config
from repro.parallel import TaskSpec, run_tasks


def sparkline(values: List[float], width: int = 72) -> str:
    """Render a series as a unicode sparkline (used for Fig. 5 timelines)."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    step = max(1, len(values) // width)
    sampled = [max(values[i:i + step]) for i in range(0, len(values), step)]
    top = max(sampled) or 1.0
    return "".join(blocks[min(8, int(v / top * 8))] for v in sampled)


_RUNNERS = "repro.parallel.runners"


def _sweep(specs: List[TaskSpec], jobs: int) -> tuple:
    """Run a sweep; returns (rows, failed) with crashes reported, not raised."""
    results = run_tasks(specs, jobs=jobs)
    failed = 0
    for result in results:
        if not result.ok:
            failed += 1
            print(f"FAILED {result.label}: {result.error_type}", file=sys.stderr)
            print(result.error, file=sys.stderr)
    return results, failed


def cmd_fig3(args) -> int:
    specs = [TaskSpec(f"{_RUNNERS}.migration_run",
                      dict(num_qps=num_qps, migrate=args.migrate,
                           presetup=presetup),
                      label=f"fig3:{num_qps}qp:{'pre' if presetup else 'nopre'}")
             for num_qps in args.qps for presetup in (True, False)]
    results, failed = _sweep(specs, args.jobs)
    print(f"{'case':<18}{'QPs':>6}{'DumpRDMA':>10}{'DumpOthers':>12}"
          f"{'Transfer':>10}{'RestoreRDMA':>13}{'FullRestore':>13}{'blackout':>10}")
    for result in results:
        if not result.ok:
            continue
        row = result.value
        phases = row["phases"]
        label = f"{row['migrate']}/{'pre' if row['presetup'] else 'nopre'}"
        print(f"{label:<18}{row['num_qps']:>6}"
              f"{phases.get('DumpRDMA', 0) * 1e3:>10.1f}"
              f"{phases.get('DumpOthers', 0) * 1e3:>12.1f}"
              f"{phases.get('Transfer', 0) * 1e3:>10.1f}"
              f"{phases.get('RestoreRDMA', 0) * 1e3:>13.1f}"
              f"{phases.get('FullRestore', 0) * 1e3:>13.1f}"
              f"{row['blackout_s'] * 1e3:>10.1f}  (ms)")
    return 1 if failed else 0


def cmd_fig4(args) -> int:
    link_rate = default_config().link.rate_bps
    if args.sweep == "qps":
        points = [(n, 4096) for n in (1, 4, 16, 64)]
    else:
        points = [(1, s) for s in (512, 4096, 65536, 524288)]
    specs = [TaskSpec(f"{_RUNNERS}.migration_run",
                      dict(num_qps=num_qps, migrate="sender", presetup=False,
                           msg_size=msg_size, depth=64),
                      label=f"fig4:{num_qps}qp:{msg_size}B")
             for num_qps, msg_size in points]
    results, failed = _sweep(specs, args.jobs)
    print(f"{'point':>10}{'theory_us':>12}{'wbs_us':>10}{'ratio':>8}")
    for (num_qps, msg_size), result in zip(points, results):
        if not result.ok:
            continue
        row = result.value
        theory = num_qps * 64 * msg_size * 8 / link_rate
        point = num_qps if args.sweep == "qps" else msg_size
        print(f"{point:>10}{theory * 1e6:>12.2f}"
              f"{row['wbs_elapsed_s'] * 1e6:>10.2f}"
              f"{row['wbs_elapsed_s'] / theory:>8.2f}")
    return 1 if failed else 0


def cmd_fig5(args) -> int:
    specs = [TaskSpec(f"{_RUNNERS}.migration_run",
                      dict(num_qps=16, migrate=args.migrate, presetup=True,
                           msg_size=2 * 1024 * 1024, depth=8,
                           sample_partner=True),
                      label=f"fig5:{args.migrate}")]
    results, failed = _sweep(specs, args.jobs)
    if failed:
        return 1
    row = results[0].value
    series = row["samples"]
    print(f"partner {row['sample_direction']} throughput during "
          f"migrate-{row['migrate']} "
          f"(5 ms samples, blackout {row['blackout_s'] * 1e3:.0f} ms):")
    print(sparkline(series))
    print(f"peak {max(series):.1f} Gbps; "
          f"suspension at t={row['t_suspend']:.3f}s, "
          f"resume at t={row['t_resume']:.3f}s")
    return 0


def cmd_table4(args) -> int:
    modes = ("send", "write", "read")
    specs = [TaskSpec(f"{_RUNNERS}.table4_run",
                      dict(mode=mode, virtualized=virtualized),
                      label=f"table4:{mode}:{'virt' if virtualized else 'base'}")
             for mode in modes for virtualized in (False, True)]
    results, failed = _sweep(specs, args.jobs)
    cells = {(r.value["mode"], r.value["virtualized"]): r.value["mean_cycles"]
             for r in results if r.ok}
    print(f"{'op':<8}{'w/o virt':>10}{'with virt':>11}{'extra':>8}{'overhead':>10}")
    for mode in modes:
        if (mode, False) not in cells or (mode, True) not in cells:
            continue
        base = cells[(mode, False)]
        virt = cells[(mode, True)]
        print(f"{mode:<8}{base:>10.1f}{virt:>11.1f}{virt - base:>8.1f}"
              f"{(virt - base) / base:>9.1%}")
    return 1 if failed else 0


def cmd_fig6(args) -> int:
    event = 0.05 if args.fast else 3.0
    scenarios = ("baseline", "migrrdma", "failover")
    specs = [TaskSpec(f"{_RUNNERS}.fig6_run",
                      dict(task=args.task, scenario=scenario, fast=args.fast,
                           event_after_s=event),
                      label=f"fig6:{args.task}:{scenario}")
             for scenario in scenarios]
    results, failed = _sweep(specs, args.jobs)
    print(f"{'strategy':<12}{'JCT_s':>8}{'tput_gbps':>11}")
    for result in results:
        if not result.ok:
            continue
        row = result.value
        tput = (f"{row['tput_gbps']:>11.2f}"
                if row["tput_gbps"] is not None else f"{'n/a':>11}")
        print(f"{row['scenario']:<12}{row['jct_s']:>8.2f}{tput}")
    return 1 if failed else 0


def cmd_trace(args) -> None:
    """One traced migration: Chrome trace JSON + text timeline summary."""
    from repro import cluster
    from repro.apps.perftest import PerftestEndpoint, connect_endpoints
    from repro.core import LiveMigration, MigrRdmaWorld
    from repro.obs import MetricsRegistry, Tracer, timeline_summary, write_chrome_trace

    tb = cluster.build(num_partners=1)
    tracer = Tracer(tb.sim, kernel_dispatch=args.kernel_dispatch).attach()
    world = MigrRdmaWorld(tb)
    kwargs = dict(world=world, mode="write", msg_size=args.msg_size, depth=8)
    migrate = args.migrate
    sender = PerftestEndpoint(tb.source if migrate == "sender" else tb.partners[0],
                              name="tx", **kwargs)
    receiver = PerftestEndpoint(tb.partners[0] if migrate == "sender" else tb.source,
                                name="rx", **kwargs)
    mover = sender if migrate == "sender" else receiver

    def setup():
        yield from sender.setup(qp_budget=args.qps)
        yield from receiver.setup(qp_budget=args.qps)
        yield from connect_endpoints(sender, receiver, qp_count=args.qps)

    tb.run(setup())
    sender.start_as_sender()

    def flow():
        yield tb.sim.timeout(2e-3)
        migration = LiveMigration(world, mover.container, tb.destination,
                                  presetup=not args.no_presetup)
        report = yield from migration.run()
        yield tb.sim.timeout(2e-3)
        sender.stop()
        receiver.stop()
        yield tb.sim.timeout(2e-3)
        return report

    report = tb.run(flow(), limit=1200.0)
    metrics = MetricsRegistry()
    metrics.scrape_testbed(tb, world)
    write_chrome_trace(tracer, args.out, metrics=metrics)
    print(timeline_summary(tracer, metrics=metrics))
    print()
    print(f"blackout {report.blackout_s * 1e3:.1f} ms, "
          f"wbs {report.wbs_elapsed_s * 1e6:.0f} us, "
          f"{len(tracer)} trace records -> {args.out} "
          f"(load in https://ui.perfetto.dev)")


def cmd_migros(args) -> int:
    specs = [TaskSpec(f"{_RUNNERS}.migros_run", dict(num_qps=num_qps),
                      label=f"migros:{num_qps}qp")
             for num_qps in args.qps]
    results, failed = _sweep(specs, args.jobs)
    print(f"{'QPs':>6}{'migrrdma_ms':>13}{'migros_ms':>11}{'slowdown':>10}")
    for result in results:
        if not result.ok:
            continue
        row = result.value
        print(f"{row['num_qps']:>6}{row['migrrdma_blackout_s'] * 1e3:>13.1f}"
              f"{row['migros_blackout_s'] * 1e3:>11.1f}"
              f"{row['migros_slowdown']:>9.2f}x")
    return 1 if failed else 0


def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _noise_levels(text: str) -> List[object]:
    """Parse ``--noise``: ``off`` | ``unshaped`` | a Gbps rate limit."""
    levels: List[object] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part in ("off", "unshaped"):
            levels.append(part)
        else:
            levels.append(float(part))
    return levels


def _kv_point(level, args) -> dict:
    kwargs = dict(seed=args.seed, n_clients=args.clients, depth=args.depth,
                  qos=not args.no_qos, migrate=not args.no_migrate)
    if level == "off":
        kwargs["noise"] = False
    elif level == "unshaped":
        kwargs.update(noise=True, noise_limit_gbps=None)
    else:
        kwargs.update(noise=True, noise_limit_gbps=level)
    return kwargs


def cmd_kv(args) -> int:
    specs = [TaskSpec(f"{_RUNNERS}.kvstore_run", _kv_point(level, args),
                      label=f"kv:noise-{level}")
             for level in args.noise]
    results, failed = _sweep(specs, args.jobs)
    print(f"{'noise':>10}{'gets':>8}{'p50_us':>8}{'p99_us':>8}"
          f"{'blackout_ms':>13}{'noise_gbps':>12}{'bound':>7}{'invariants':>12}")
    violations = 0
    for level, result in zip(args.noise, results):
        if not result.ok:
            continue
        row = result.value
        bad = (not row["invariants_ok"]) or row["contract_violations"] \
            or row.get("noise_within_bound") is False
        if bad:
            violations += 1
            for violation in (row["violations"] + row["contract_violations"]):
                print(f"  VIOLATION noise={level}: {violation}",
                      file=sys.stderr)
            if row.get("noise_within_bound") is False:
                print(f"  VIOLATION noise={level}: tenant exceeded its "
                      f"token bucket ({row['noise_tx_bytes']} > "
                      f"{row['noise_allowed_bytes']:.0f} bytes)",
                      file=sys.stderr)
        blackout = (f"{row['blackout_ms']:>13.2f}"
                    if row["blackout_ms"] is not None else f"{'n/a':>13}")
        gbps = (f"{row['noise_gbps']:>12.1f}"
                if "noise_gbps" in row else f"{'n/a':>12}")
        bound = {True: "ok", False: "OVER", None: "-"}[
            row.get("noise_within_bound")]
        print(f"{str(level):>10}{row['gets']:>8}"
              f"{row['victim_get_p50_us']:>8.1f}"
              f"{row['victim_get_p99_us']:>8.1f}"
              f"{blackout}{gbps}{bound:>7}"
              f"{'ok' if not bad else 'VIOLATED':>12}")
        print(f"        digest {row['digest'][:16]}  "
              f"events {row['events_processed']}")
    if failed or violations:
        return 1
    print(f"kv noisy-neighbour sweep clean at every noise level "
          f"({','.join(str(level) for level in args.noise)})")
    return 0


def cmd_torture(args) -> int:
    from repro.chaos.torture import torture

    failures = torture(args.seed, args.runs, scenarios=args.scenario,
                       shrink_failures=not args.no_shrink, jobs=args.jobs,
                       rpc_loss=args.rpc_loss, kill_dest_at=args.kill_dest_at,
                       partition=args.partition,
                       kill_scheduler_at=args.kill_scheduler_at)
    if failures:
        print(f"{len(failures)} of {args.runs} runs violated invariants")
        return 1
    print(f"all {args.runs} runs clean (seed {args.seed})")
    return 0


def cmd_recovery(args) -> int:
    specs = [TaskSpec(f"{_RUNNERS}.recovery_run",
                      dict(seed=args.seed + i, rpc_loss=args.rpc_loss,
                           kill_dest_at=args.kill_dest_at, down_s=args.down_s,
                           budget=args.budget),
                      label=f"recovery:{args.seed + i}")
             for i in range(args.runs)]
    results, failed = _sweep(specs, args.jobs)
    print(f"{'seed':>6}{'attempts':>10}{'rollbacks':>11}{'rpc_retries':>13}"
          f"{'blackout_ms':>13}{'invariants':>12}")
    violations = 0
    for result in results:
        if not result.ok:
            continue
        row = result.value
        if not row["invariants_ok"]:
            violations += 1
            for violation in row["violations"]:
                print(f"  VIOLATION seed {row['seed']}: {violation}",
                      file=sys.stderr)
        blackout = (f"{row['blackout_ms']:>13.2f}"
                    if row["blackout_ms"] is not None else f"{'n/a':>13}")
        print(f"{row['seed']:>6}{len(row['attempts']):>10}"
              f"{row['rolled_back_attempts']:>11}"
              f"{row['resilience']['rpc_retries']:>13}"
              f"{blackout}"
              f"{'ok' if row['invariants_ok'] else 'VIOLATED':>12}")
    if failed or violations:
        return 1
    print(f"all {args.runs} recovery runs clean "
          f"(crash at {args.kill_dest_at}, rpc loss {args.rpc_loss})")
    return 0


def cmd_fleet(args) -> int:
    if args.hosts < 2 or args.hosts % args.racks:
        print(f"--hosts must be a multiple of --racks "
              f"(got {args.hosts} hosts, {args.racks} racks)", file=sys.stderr)
        return 2
    hosts_per_rack = args.hosts // args.racks
    specs = [TaskSpec(f"{_RUNNERS}.fleet_run",
                      dict(racks=args.racks, hosts_per_rack=hosts_per_rack,
                           containers=args.containers, policy=args.policy,
                           target=args.target, seed=args.seed,
                           concurrency=concurrency, placement=args.placement,
                           oversubscription=args.oversub,
                           kill_host=args.kill_host, kill_at=args.kill_at,
                           degrade_rack=args.degrade_rack,
                           degrade_factor=args.degrade_factor,
                           kv_pairs=args.kv_pairs,
                           partition_hosts=args.partition_hosts,
                           partition_start_s=args.partition_at,
                           partition_dur_s=args.partition_dur,
                           kill_scheduler_at=args.kill_scheduler_at,
                           scheduler_down_s=args.scheduler_down_s),
                      label=f"fleet:c{concurrency}")
             for concurrency in args.concurrency]
    results, failed = _sweep(specs, args.jobs)
    print(f"{'conc':>5}{'planned':>9}{'done':>6}{'failed':>8}"
          f"{'drain_ms':>10}{'p50_ms':>8}{'p99_ms':>8}{'peak':>6}"
          f"{'invariants':>12}")
    violations = 0
    for result in results:
        if not result.ok:
            continue
        row = result.value
        if not row["invariants_ok"]:
            violations += 1
            for violation in row["violations"]:
                print(f"  VIOLATION c={row['concurrency']}: {violation}",
                      file=sys.stderr)
        blackout = row["blackout"]
        print(f"{row['concurrency']:>5}{row['jobs_planned']:>9}"
              f"{row['completed']:>6}{row['failed']:>8}"
              f"{row['drain_s'] * 1e3:>10.1f}"
              f"{(blackout['p50'] or 0) * 1e3:>8.1f}"
              f"{(blackout['p99'] or 0) * 1e3:>8.1f}"
              f"{row['max_concurrency']:>6}"
              f"{'ok' if row['invariants_ok'] else 'VIOLATED':>12}")
        for link, stats in row["links"].items():
            backlog = row["link_peak_backlog"].get(link, 0)
            print(f"        {link:<12} util {stats['utilization'] * 100:6.2f}%"
                  f"   {stats['bytes']:>12} B"
                  f"   peak backlog {backlog / 1e3:8.1f} KB")
        print(f"        digest {row['digest'][:16]}  "
              f"fleet {row['fleet_digest'][:16]}")
    if failed or violations:
        return 1
    print(f"fleet {args.policy} of {args.target!r} clean at every "
          f"concurrency ({','.join(str(c) for c in args.concurrency)})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", action="store_true",
                        help="run the command under cProfile and dump the "
                             "top 30 functions (cumulative and internal "
                             "time) to stderr afterwards")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    def add_jobs(p):
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the sweep (0 = all cores)")

    p3 = sub.add_parser("fig3", help="blackout breakdown")
    p3.add_argument("--qps", type=_csv_ints, default=[16, 64])
    p3.add_argument("--migrate", choices=["sender", "receiver"], default="sender")
    add_jobs(p3)

    p4 = sub.add_parser("fig4", help="wait-before-stop overhead")
    p4.add_argument("--sweep", choices=["qps", "msgsize"], default="msgsize")
    add_jobs(p4)

    p5 = sub.add_parser("fig5", help="partner throughput timeline")
    p5.add_argument("--migrate", choices=["sender", "receiver"], default="sender")
    add_jobs(p5)

    pt4 = sub.add_parser("table4", help="data-path virtualization overhead")
    add_jobs(pt4)

    p6 = sub.add_parser("fig6", help="Hadoop maintenance scenarios")
    p6.add_argument("--task", choices=["dfsio", "estimatepi"], default="dfsio")
    p6.add_argument("--fast", action="store_true")
    add_jobs(p6)

    pm = sub.add_parser("migros", help="MigrRDMA vs MigrOS comparison")
    pm.add_argument("--qps", type=_csv_ints, default=[16, 64])
    add_jobs(pm)

    pt = sub.add_parser("trace", help="traced migration -> Perfetto JSON")
    pt.add_argument("--qps", type=int, default=8)
    pt.add_argument("--migrate", choices=["sender", "receiver"], default="sender")
    pt.add_argument("--msg-size", type=int, default=65536)
    pt.add_argument("--no-presetup", action="store_true")
    pt.add_argument("--kernel-dispatch", action="store_true",
                    help="per-event kernel dispatch instants (large trace)")
    pt.add_argument("--out", default="trace.json")

    pk = sub.add_parser("kv", help="KV store under a noisy neighbour "
                                   "(victim GET latency + QoS isolation)")
    pk.add_argument("--seed", type=int, default=7)
    pk.add_argument("--clients", type=int, default=2)
    pk.add_argument("--depth", type=int, default=4)
    pk.add_argument("--noise", type=_noise_levels, default=["off", 40.0],
                    metavar="L[,L...]",
                    help="noise levels to sweep: 'off', 'unshaped', or a "
                         "token-bucket rate limit in Gbps")
    pk.add_argument("--no-qos", action="store_true",
                    help="leave the per-tenant QoS model uninstalled")
    pk.add_argument("--no-migrate", action="store_true",
                    help="skip migrating the victim client mid-traffic")
    add_jobs(pk)

    px = sub.add_parser("torture",
                        help="fault-injection sweep with invariant checks")
    px.add_argument("--seed", type=int, default=7)
    px.add_argument("--runs", type=int, default=25)
    px.add_argument("--scenario", "--app", dest="scenario",
                    choices=["all", "perftest", "hadoop", "kv"],
                    default="all")
    px.add_argument("--no-shrink", action="store_true",
                    help="skip minimizing failing fault sets")
    px.add_argument("--rpc-loss", type=float, default=None, metavar="P",
                    help="also drop control-plane RPC messages with prob. P")
    px.add_argument("--kill-dest-at", default=None, metavar="BOUNDARY",
                    help="crash the destination daemon at a phase boundary "
                         "('random' = pick one per case)")
    px.add_argument("--partition", type=float, default=None, metavar="P",
                    help="with prob. P per case, sever both directions "
                         "between a node pair (TCP control and RDMA alike)")
    px.add_argument("--kill-scheduler-at", default=None, metavar="T",
                    help="enable the fleet-drain scenario slot and crash "
                         "its scheduler T sim-seconds into the drain "
                         "('random' = pick per case); recovery resumes "
                         "from the journal")
    add_jobs(px)

    pf = sub.add_parser("fleet",
                        help="fleet-scale drain/rebalance/evict under "
                             "admission control")
    pf.add_argument("--hosts", type=int, default=8,
                    help="total hosts (must divide evenly into --racks)")
    pf.add_argument("--racks", type=int, default=2)
    pf.add_argument("--containers", type=int, default=32)
    pf.add_argument("--policy", choices=["drain", "rebalance", "evict"],
                    default="drain")
    pf.add_argument("--target", default="rack0",
                    help="host/rack to drain, or comma-separated containers "
                         "to evict (unused by rebalance)")
    pf.add_argument("--seed", type=int, default=7)
    pf.add_argument("--concurrency", type=_csv_ints, default=[4],
                    metavar="N[,N...]",
                    help="admission-limit sweep, one fleet run per value")
    pf.add_argument("--placement",
                    choices=["pack", "spread", "least-loaded"],
                    default="least-loaded")
    pf.add_argument("--oversub", type=float, default=4.0,
                    help="ToR trunk oversubscription factor")
    pf.add_argument("--kill-host", default=None, metavar="HOST",
                    help="kill HOST's daemon mid-drain (torture overlay)")
    pf.add_argument("--kill-at", type=float, default=0.05, metavar="T",
                    help="sim seconds after traffic start for --kill-host")
    pf.add_argument("--degrade-rack", default=None, metavar="RACK",
                    help="slow RACK's ToR uplink during the drain")
    pf.add_argument("--degrade-factor", type=float, default=4.0)
    pf.add_argument("--partition-hosts", default=None, metavar="A:B",
                    help="sever both directions between hosts A and B "
                         "mid-drain (lease fencing must hold)")
    pf.add_argument("--partition-at", type=float, default=5e-3, metavar="T",
                    help="sim seconds after traffic start for "
                         "--partition-hosts")
    pf.add_argument("--partition-dur", type=float, default=2e-3,
                    metavar="D", help="partition duration in sim seconds")
    pf.add_argument("--kill-scheduler-at", type=float, default=None,
                    metavar="T",
                    help="crash the drain scheduler T sim-seconds after "
                         "traffic start; a recovery incarnation resumes "
                         "from the journal")
    pf.add_argument("--scheduler-down-s", type=float, default=20e-3,
                    metavar="D", help="scheduler outage duration")
    pf.add_argument("--kv-pairs", type=int, default=0, metavar="N",
                    help="also place N KV server/client container pairs "
                         "(tenant 'kv') that migrate with the drain")
    add_jobs(pf)

    pr = sub.add_parser("recovery",
                        help="supervised recovery from destination crashes")
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--runs", type=int, default=4)
    pr.add_argument("--rpc-loss", type=float, default=0.05)
    pr.add_argument("--kill-dest-at", default="precopy-dumped",
                    metavar="BOUNDARY")
    pr.add_argument("--down-s", type=float, default=18e-3)
    pr.add_argument("--budget", type=int, default=3)
    add_jobs(pr)

    args = parser.parse_args(argv)
    if args.command == "list":
        for name in ("fig3", "fig4", "fig5", "table4", "fig6", "migros",
                     "trace", "kv", "torture", "recovery", "fleet"):
            print(name)
        return 0
    handler = globals()[f"cmd_{args.command}"]
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return handler(args) or 0
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            for order in ("cumulative", "tottime"):
                stats.sort_stats(order).print_stats(30)
    return handler(args) or 0


if __name__ == "__main__":
    sys.exit(main())
