"""Command-line experiment runner: regenerate paper tables without pytest.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig3 [--qps 16,64] [--migrate sender]
    python -m repro.experiments fig4 [--sweep msgsize]
    python -m repro.experiments fig5 [--migrate receiver]
    python -m repro.experiments table4
    python -m repro.experiments fig6 [--task dfsio] [--fast]
    python -m repro.experiments migros [--qps 16,64,256]
    python -m repro.experiments trace [--qps 8] [--out trace.json]

The pytest benchmarks under ``benchmarks/`` remain the canonical
reproduction (they also assert the paper's shape claims); this runner is
the quick way to eyeball one experiment.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro import cluster
from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.baselines import MigrOsModel
from repro.config import default_config
from repro.core import LiveMigration, MigrRdmaWorld
from repro.metrics import ThroughputSampler


def sparkline(values: List[float], width: int = 72) -> str:
    """Render a series as a unicode sparkline (used for Fig. 5 timelines)."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    step = max(1, len(values) // width)
    sampled = [max(values[i:i + step]) for i in range(0, len(values), step)]
    top = max(sampled) or 1.0
    return "".join(blocks[min(8, int(v / top * 8))] for v in sampled)


def _migration_run(num_qps: int, migrate: str, presetup: bool,
                   msg_size: int = 65536, depth: int = 8,
                   sample_partner: bool = False):
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    kwargs = dict(world=world, mode="write", msg_size=msg_size, depth=depth)
    sender = PerftestEndpoint(tb.source if migrate == "sender" else tb.partners[0],
                              name="tx", **kwargs)
    receiver = PerftestEndpoint(tb.partners[0] if migrate == "sender" else tb.source,
                                name="rx", **kwargs)
    mover = sender if migrate == "sender" else receiver

    def setup():
        yield from sender.setup(qp_budget=num_qps)
        yield from receiver.setup(qp_budget=num_qps)
        yield from connect_endpoints(sender, receiver, qp_count=num_qps)

    tb.run(setup())
    sampler = None
    if sample_partner:
        sampler = ThroughputSampler.for_nic(tb.sim, tb.partners[0].rnic, 5e-3)
        sampler.start()
    sender.start_as_sender()

    def flow():
        yield tb.sim.timeout(0.25 if sample_partner else 2e-3)
        migration = LiveMigration(world, mover.container, tb.destination,
                                  presetup=presetup)
        report = yield from migration.run()
        yield tb.sim.timeout(0.3 if sample_partner else 2e-3)
        sender.stop()
        receiver.stop()
        yield tb.sim.timeout(2e-3)
        return report

    report = tb.run(flow(), limit=1200.0)
    if sampler is not None:
        sampler.stop()
    assert sender.stats.clean, sender.stats.status_errors[:2]
    return report, sampler, migrate


def cmd_fig3(args) -> None:
    print(f"{'case':<18}{'QPs':>6}{'DumpRDMA':>10}{'DumpOthers':>12}"
          f"{'Transfer':>10}{'RestoreRDMA':>13}{'FullRestore':>13}{'blackout':>10}")
    for num_qps in args.qps:
        for presetup in (True, False):
            report, _s, _m = _migration_run(num_qps, args.migrate, presetup)
            phases = dict(report.breakdown.ordered())
            label = f"{args.migrate}/{'pre' if presetup else 'nopre'}"
            print(f"{label:<18}{num_qps:>6}"
                  f"{phases.get('DumpRDMA', 0) * 1e3:>10.1f}"
                  f"{phases.get('DumpOthers', 0) * 1e3:>12.1f}"
                  f"{phases.get('Transfer', 0) * 1e3:>10.1f}"
                  f"{phases.get('RestoreRDMA', 0) * 1e3:>13.1f}"
                  f"{phases.get('FullRestore', 0) * 1e3:>13.1f}"
                  f"{report.blackout_s * 1e3:>10.1f}  (ms)")


def cmd_fig4(args) -> None:
    link_rate = default_config().link.rate_bps
    print(f"{'point':>10}{'theory_us':>12}{'wbs_us':>10}{'ratio':>8}")
    if args.sweep == "qps":
        points = [(n, 4096) for n in (1, 4, 16, 64)]
    else:
        points = [(1, s) for s in (512, 4096, 65536, 524288)]
    for num_qps, msg_size in points:
        report, _s, _m = _migration_run(num_qps, "sender", presetup=False,
                                        msg_size=msg_size, depth=64)
        theory = num_qps * 64 * msg_size * 8 / link_rate
        point = num_qps if args.sweep == "qps" else msg_size
        print(f"{point:>10}{theory * 1e6:>12.2f}"
              f"{report.wbs_elapsed_s * 1e6:>10.2f}"
              f"{report.wbs_elapsed_s / theory:>8.2f}")


def cmd_fig5(args) -> None:
    report, sampler, migrate = _migration_run(
        16, args.migrate, presetup=True, msg_size=2 * 1024 * 1024,
        depth=8, sample_partner=True)
    direction = "rx" if migrate == "sender" else "tx"
    series = [getattr(s, f"{direction}_gbps") for s in sampler.samples]
    print(f"partner {direction} throughput during migrate-{migrate} "
          f"(5 ms samples, blackout {report.blackout_s * 1e3:.0f} ms):")
    print(sparkline(series))
    print(f"peak {max(series):.1f} Gbps; "
          f"suspension at t={report.t_suspend:.3f}s, "
          f"resume at t={report.t_resume:.3f}s")


def cmd_table4(args) -> None:
    from repro.core import MigrRdmaWorld as World

    def measure(mode, virtualized):
        tb = cluster.build(num_partners=1)
        world = World(tb) if virtualized else None
        tx = PerftestEndpoint(tb.source, world=world, mode=mode, msg_size=64,
                              depth=16, sample_cycles=True)
        rx = PerftestEndpoint(tb.partners[0], world=world, mode=mode,
                              msg_size=64, depth=16)

        def flow():
            yield from tx.setup(qp_budget=1)
            yield from rx.setup(qp_budget=1)
            yield from connect_endpoints(tx, rx, qp_count=1)
            if mode == "send":
                rx.start_as_receiver()
            tx.start_as_sender(iters=1024)
            while tx.running:
                yield tb.sim.timeout(50e-6)

        tb.run(flow(), limit=60.0)
        return tx.process.cpu.mean_sample_cycles(mode)

    print(f"{'op':<8}{'w/o virt':>10}{'with virt':>11}{'extra':>8}{'overhead':>10}")
    for mode in ("send", "write", "read"):
        base = measure(mode, False)
        virt = measure(mode, True)
        print(f"{mode:<8}{base:>10.1f}{virt:>11.1f}{virt - base:>8.1f}"
              f"{(virt - base) / base:>9.1%}")


def cmd_fig6(args) -> None:
    from repro.apps.hadoop_scenarios import fast_test_config, run_scenario

    config = fast_test_config() if args.fast else None
    event = 0.05 if args.fast else 3.0
    base = None
    print(f"{'strategy':<12}{'JCT_s':>8}{'tput_gbps':>11}")
    for scenario in ("baseline", "migrrdma", "failover"):
        outcome = run_scenario(args.task, scenario, config=config,
                               event_after_s=event)
        tput = (f"{outcome.tput_gbps():>11.2f}"
                if args.task == "dfsio" else f"{'n/a':>11}")
        print(f"{scenario:<12}{outcome.jct_s:>8.2f}{tput}")


def cmd_trace(args) -> None:
    """One traced migration: Chrome trace JSON + text timeline summary."""
    from repro.obs import MetricsRegistry, Tracer, timeline_summary, write_chrome_trace

    tb = cluster.build(num_partners=1)
    tracer = Tracer(tb.sim, kernel_dispatch=args.kernel_dispatch).attach()
    world = MigrRdmaWorld(tb)
    kwargs = dict(world=world, mode="write", msg_size=args.msg_size, depth=8)
    migrate = args.migrate
    sender = PerftestEndpoint(tb.source if migrate == "sender" else tb.partners[0],
                              name="tx", **kwargs)
    receiver = PerftestEndpoint(tb.partners[0] if migrate == "sender" else tb.source,
                                name="rx", **kwargs)
    mover = sender if migrate == "sender" else receiver

    def setup():
        yield from sender.setup(qp_budget=args.qps)
        yield from receiver.setup(qp_budget=args.qps)
        yield from connect_endpoints(sender, receiver, qp_count=args.qps)

    tb.run(setup())
    sender.start_as_sender()

    def flow():
        yield tb.sim.timeout(2e-3)
        migration = LiveMigration(world, mover.container, tb.destination,
                                  presetup=not args.no_presetup)
        report = yield from migration.run()
        yield tb.sim.timeout(2e-3)
        sender.stop()
        receiver.stop()
        yield tb.sim.timeout(2e-3)
        return report

    report = tb.run(flow(), limit=1200.0)
    metrics = MetricsRegistry()
    metrics.scrape_testbed(tb, world)
    write_chrome_trace(tracer, args.out, metrics=metrics)
    print(timeline_summary(tracer, metrics=metrics))
    print()
    print(f"blackout {report.blackout_s * 1e3:.1f} ms, "
          f"wbs {report.wbs_elapsed_s * 1e6:.0f} us, "
          f"{len(tracer)} trace records -> {args.out} "
          f"(load in https://ui.perfetto.dev)")


def cmd_migros(args) -> None:
    model = MigrOsModel(default_config())
    print(f"{'QPs':>6}{'migrrdma_ms':>13}{'migros_ms':>11}{'slowdown':>10}")
    for num_qps in args.qps:
        report, _s, _m = _migration_run(num_qps, "sender", presetup=True)
        row = model.compare(report, num_qps)
        print(f"{num_qps:>6}{row['migrrdma_blackout_s'] * 1e3:>13.1f}"
              f"{row['migros_blackout_s'] * 1e3:>11.1f}"
              f"{row['migros_slowdown']:>9.2f}x")


def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def cmd_torture(args) -> int:
    from repro.chaos.torture import torture

    failures = torture(args.seed, args.runs, scenarios=args.scenario,
                       shrink_failures=not args.no_shrink)
    if failures:
        print(f"{len(failures)} of {args.runs} runs violated invariants")
        return 1
    print(f"all {args.runs} runs clean (seed {args.seed})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")

    p3 = sub.add_parser("fig3", help="blackout breakdown")
    p3.add_argument("--qps", type=_csv_ints, default=[16, 64])
    p3.add_argument("--migrate", choices=["sender", "receiver"], default="sender")

    p4 = sub.add_parser("fig4", help="wait-before-stop overhead")
    p4.add_argument("--sweep", choices=["qps", "msgsize"], default="msgsize")

    p5 = sub.add_parser("fig5", help="partner throughput timeline")
    p5.add_argument("--migrate", choices=["sender", "receiver"], default="sender")

    sub.add_parser("table4", help="data-path virtualization overhead")

    p6 = sub.add_parser("fig6", help="Hadoop maintenance scenarios")
    p6.add_argument("--task", choices=["dfsio", "estimatepi"], default="dfsio")
    p6.add_argument("--fast", action="store_true")

    pm = sub.add_parser("migros", help="MigrRDMA vs MigrOS comparison")
    pm.add_argument("--qps", type=_csv_ints, default=[16, 64])

    pt = sub.add_parser("trace", help="traced migration -> Perfetto JSON")
    pt.add_argument("--qps", type=int, default=8)
    pt.add_argument("--migrate", choices=["sender", "receiver"], default="sender")
    pt.add_argument("--msg-size", type=int, default=65536)
    pt.add_argument("--no-presetup", action="store_true")
    pt.add_argument("--kernel-dispatch", action="store_true",
                    help="per-event kernel dispatch instants (large trace)")
    pt.add_argument("--out", default="trace.json")

    px = sub.add_parser("torture",
                        help="fault-injection sweep with invariant checks")
    px.add_argument("--seed", type=int, default=7)
    px.add_argument("--runs", type=int, default=25)
    px.add_argument("--scenario", choices=["all", "perftest", "hadoop"],
                    default="all")
    px.add_argument("--no-shrink", action="store_true",
                    help="skip minimizing failing fault sets")

    args = parser.parse_args(argv)
    if args.command == "list":
        for name in ("fig3", "fig4", "fig5", "table4", "fig6", "migros",
                     "trace", "torture"):
            print(name)
        return 0
    handler = globals()[f"cmd_{args.command}"]
    return handler(args) or 0


if __name__ == "__main__":
    sys.exit(main())
