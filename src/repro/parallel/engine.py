"""The multiprocess sweep engine.

Design constraints, in order:

1. **Determinism.**  A sweep's outputs must not depend on ``--jobs``.
   Each task is a pure function of its spec: the runner rebuilds a fresh
   :class:`~repro.cluster.Testbed` (whose constructor restarts the global
   PID stream), seeds every RNG from plain task parameters via
   string-seeded ``random.Random`` / sha256 (never ``hash()``, which
   varies with ``PYTHONHASHSEED``), and returns plain data.  Results are
   merged in *spec order* regardless of completion order, so worker
   scheduling cannot reorder anything observable.
2. **Picklability.**  The ``spawn`` start method (the only one that is
   identical across platforms and interpreter states) pickles everything
   that crosses the process boundary.  A :class:`TaskSpec` therefore
   names its runner by dotted path instead of holding a function object,
   and runners must live at module level and return plain data.
3. **Failure capture.**  A crashed task must not kill the sweep: the
   worker catches the exception and ships the traceback back as a
   :class:`TaskResult` row, so the caller can report the failing task's
   identity (e.g. a torture seed) and keep going.

``jobs <= 1`` runs the same specs in-process with no pool — this is the
single code path examples and benchmarks use for their loops, so there is
exactly one sweep implementation.
"""

from __future__ import annotations

import hashlib
import importlib
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

__all__ = ["TaskSpec", "TaskResult", "run_tasks", "resolve_jobs", "derive_seed"]


def derive_seed(base_seed: int, index: int, stream: str = "sweep") -> int:
    """Shard ``base_seed`` into a per-task seed, stable across processes.

    Hashes through sha256 so the result is independent of
    ``PYTHONHASHSEED`` and of the process the derivation runs in; mixes a
    ``stream`` name so two different sweeps sharing one base seed do not
    produce correlated task seeds.
    """
    digest = hashlib.sha256(f"{stream}:{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None`` or ``0`` means "all cores"; anything negative is an error."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


@dataclass(frozen=True)
class TaskSpec:
    """One unit of sweep work: a module-level runner plus plain kwargs.

    ``runner`` is the dotted path of a module-level function
    (``"repro.parallel.runners.torture_run"``) so the spec pickles under
    spawn no matter where it was built; ``kwargs`` must be plain data for
    the same reason.
    """

    runner: str
    kwargs: Dict[str, object] = field(default_factory=dict)
    label: str = ""

    def resolve(self) -> Callable[..., object]:
        module_name, _, func_name = self.runner.rpartition(".")
        if not module_name:
            raise ValueError(f"runner {self.runner!r} is not a dotted path")
        module = importlib.import_module(module_name)
        try:
            fn = getattr(module, func_name)
        except AttributeError:
            raise LookupError(
                f"runner {func_name!r} not found in {module_name}") from None
        if not callable(fn):
            raise TypeError(f"runner {self.runner!r} is not callable")
        return fn


@dataclass
class TaskResult:
    """Outcome of one task: the runner's return value or its traceback."""

    index: int
    label: str
    ok: bool
    value: object = None
    error: Optional[str] = None  # formatted traceback when not ok
    error_type: Optional[str] = None
    duration_s: float = 0.0


def execute_task(indexed_spec) -> TaskResult:
    """Run one spec, capturing any exception (module-level: spawn-picklable)."""
    index, spec = indexed_spec
    start = time.perf_counter()
    try:
        value = spec.resolve()(**spec.kwargs)
        return TaskResult(index=index, label=spec.label, ok=True, value=value,
                          duration_s=time.perf_counter() - start)
    except Exception as exc:
        return TaskResult(index=index, label=spec.label, ok=False,
                          error=traceback.format_exc(),
                          error_type=type(exc).__name__,
                          duration_s=time.perf_counter() - start)


def run_tasks(specs: Sequence[TaskSpec], jobs: Optional[int] = 1,
              on_result: Optional[Callable[[TaskResult], None]] = None,
              ) -> List[TaskResult]:
    """Run every spec; return results in spec order.

    ``jobs <= 1`` (after :func:`resolve_jobs`) executes in-process with no
    pool; otherwise a ``spawn`` worker pool runs tasks concurrently and
    the results are merged back into spec order.  ``on_result`` fires in
    *completion* order (progress reporting); the returned list is what
    callers should treat as authoritative.

    A task that raises comes back as a ``TaskResult`` with ``ok=False``
    and the traceback in ``error`` — ``run_tasks`` itself never raises on
    task failure.
    """
    specs = list(specs)
    jobs = min(resolve_jobs(jobs), max(1, len(specs)))
    results: List[Optional[TaskResult]] = [None] * len(specs)
    if jobs <= 1:
        for item in enumerate(specs):
            result = execute_task(item)
            results[result.index] = result
            if on_result is not None:
                on_result(result)
        return results  # type: ignore[return-value]
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=jobs) as pool:
        for result in pool.imap_unordered(execute_task, list(enumerate(specs))):
            results[result.index] = result
            if on_result is not None:
                on_result(result)
    return results  # type: ignore[return-value]
