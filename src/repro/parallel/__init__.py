"""Seed-deterministic parallel execution for sweeps.

Every paper experiment (Figs. 3-6, Table 4), the MigrOS comparison and the
chaos torture campaign are sweeps over *independent* simulations: each
point builds its own :class:`~repro.cluster.Testbed` and never shares
state with its neighbours.  This package exploits that by fanning the
points out over a ``spawn`` worker pool while keeping the results — and
the sha256 run digests — bit-identical to a sequential run.

See DESIGN.md §10 for the determinism contract.
"""

from repro.parallel.engine import (
    TaskResult,
    TaskSpec,
    derive_seed,
    resolve_jobs,
    run_tasks,
)

__all__ = ["TaskSpec", "TaskResult", "run_tasks", "resolve_jobs", "derive_seed"]
