"""Picklable sweep runners: one module-level function per sweep point.

These are the only entry points the parallel engine dispatches to.  They
must stay importable from a spawn worker (no closures, no lambdas), take
plain-data kwargs, and return plain data (dicts, or dataclasses made of
plain fields) so the results pickle back to the parent.

Each runner builds its own :class:`~repro.cluster.Testbed` or
:class:`~repro.cluster.ClusterBed` (fleet runners build whole racks) —
whose constructor restarts the global PID stream and the per-NIC QPN
band stream — so a point's result depends
only on the runner's arguments, never on which process or in which order
it ran.  That property is what makes ``--jobs N`` digests bit-identical
to ``--jobs 1`` (pinned by ``tests/integration/test_parallel_determinism``).
"""

from __future__ import annotations

import time
from typing import Dict, Optional


def _setup_migration(num_qps: int, migrate: str, msg_size: int, depth: int,
                     verify_content: bool = False):
    """Build the testbed + connected endpoints for one migration point."""
    from repro import cluster
    from repro.apps.perftest import PerftestEndpoint, connect_endpoints
    from repro.core import MigrRdmaWorld

    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    kwargs = dict(world=world, mode="write", msg_size=msg_size, depth=depth,
                  verify_content=verify_content)
    sender = PerftestEndpoint(tb.source if migrate == "sender" else tb.partners[0],
                              name="tx", **kwargs)
    receiver = PerftestEndpoint(tb.partners[0] if migrate == "sender" else tb.source,
                                name="rx", **kwargs)
    mover = sender if migrate == "sender" else receiver

    def setup():
        yield from sender.setup(qp_budget=num_qps)
        yield from receiver.setup(qp_budget=num_qps)
        yield from connect_endpoints(sender, receiver, qp_count=num_qps)

    tb.run(setup())
    return tb, world, sender, receiver, mover


def _run_migration_flow(tb, world, sender, receiver, mover, presetup: bool,
                        sample_partner: bool = False):
    """Start traffic, migrate the mover mid-stream, settle, stop."""
    from repro.core import LiveMigration
    from repro.metrics import ThroughputSampler

    sampler = None
    if sample_partner:
        sampler = ThroughputSampler.for_nic(tb.sim, tb.partners[0].rnic, 5e-3)
        sampler.start()
    sender.start_as_sender()
    reports = []

    def flow():
        yield tb.sim.timeout(0.25 if sample_partner else 2e-3)
        migration = LiveMigration(world, mover.container, tb.destination,
                                  presetup=presetup)
        reports.append((yield from migration.run()))
        yield tb.sim.timeout(0.3 if sample_partner else 2e-3)
        sender.stop()
        receiver.stop()
        yield tb.sim.timeout(2e-3)

    tb.run(flow(), limit=1200.0)
    if sampler is not None:
        sampler.stop()
    assert sender.stats.clean, sender.stats.status_errors[:2]
    return reports[0], sampler


def _report_fields(report) -> Dict[str, object]:
    return {
        "phases": dict(report.breakdown.ordered()),
        "blackout_s": report.blackout_s,
        "wbs_elapsed_s": report.wbs_elapsed_s,
        "t_suspend": report.t_suspend,
        "t_resume": report.t_resume,
    }


def migration_run(num_qps: int, migrate: str, presetup: bool,
                  msg_size: int = 65536, depth: int = 8,
                  sample_partner: bool = False) -> Dict[str, object]:
    """One migration point of Figs. 3/4/5: plain-data report summary."""
    tb, world, sender, receiver, mover = _setup_migration(
        num_qps, migrate, msg_size, depth)
    report, sampler = _run_migration_flow(tb, world, sender, receiver, mover,
                                          presetup, sample_partner)
    out = {"num_qps": num_qps, "migrate": migrate, "presetup": presetup,
           "sim_now": tb.sim.now,
           "events_processed": tb.sim.events_processed}
    out.update(_report_fields(report))
    if sampler is not None:
        direction = "rx" if migrate == "sender" else "tx"
        out["sample_direction"] = direction
        out["samples"] = [getattr(s, f"{direction}_gbps")
                          for s in sampler.samples]
    return out


def migros_run(num_qps: int) -> Dict[str, object]:
    """One row of the §6 MigrRDMA-vs-MigrOS comparison table."""
    from repro.baselines import MigrOsModel
    from repro.config import default_config

    tb, world, sender, receiver, mover = _setup_migration(
        num_qps, "sender", msg_size=65536, depth=8)
    report, _sampler = _run_migration_flow(tb, world, sender, receiver, mover,
                                           presetup=True)
    row = MigrOsModel(default_config()).compare(report, num_qps)
    row["sim_now"] = tb.sim.now
    row["events_processed"] = tb.sim.events_processed
    return row


def table4_run(mode: str, virtualized: bool, iters: int = 1024,
               msg_size: int = 64, depth: int = 16) -> Dict[str, object]:
    """One cell of Table 4: mean data-path cycles for one verb mode."""
    from repro import cluster
    from repro.apps.perftest import PerftestEndpoint, connect_endpoints
    from repro.core import MigrRdmaWorld

    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb) if virtualized else None
    tx = PerftestEndpoint(tb.source, world=world, mode=mode, msg_size=msg_size,
                          depth=depth, sample_cycles=True)
    rx = PerftestEndpoint(tb.partners[0], world=world, mode=mode,
                          msg_size=msg_size, depth=depth)

    def flow():
        yield from tx.setup(qp_budget=1)
        yield from rx.setup(qp_budget=1)
        yield from connect_endpoints(tx, rx, qp_count=1)
        if mode == "send":
            rx.start_as_receiver()
        tx.start_as_sender(iters=iters)
        while tx.running:
            yield tb.sim.timeout(50e-6)

    tb.run(flow(), limit=60.0)
    assert tx.stats.clean, tx.stats
    return {"mode": mode, "virtualized": virtualized,
            "mean_cycles": tx.process.cpu.mean_sample_cycles(mode),
            "sim_now": tb.sim.now}


def fig6_run(task: str, scenario: str, fast: bool,
             event_after_s: float) -> Dict[str, object]:
    """One Hadoop maintenance strategy of Fig. 6."""
    from repro.apps.hadoop_scenarios import fast_test_config, run_scenario

    config = fast_test_config() if fast else None
    outcome = run_scenario(task, scenario, config=config,
                           event_after_s=event_after_s)
    out = {"task": task, "scenario": scenario, "jct_s": outcome.jct_s,
           "tput_gbps": outcome.tput_gbps() if task == "dfsio" else None}
    report = outcome.migration_report
    if report is not None:
        out.update(_report_fields(report))
    return out


def wbs_timeout_run(wbs_timeout_s: float, msg_size: int = 256 * 1024,
                    depth: int = 64) -> Dict[str, object]:
    """One wait-before-stop point under a bounded drain (spotty network)."""
    from repro import cluster
    from repro.apps.perftest import PerftestEndpoint, connect_endpoints
    from repro.config import default_config
    from repro.core import LiveMigration, MigrRdmaWorld

    config = default_config()
    config.migration.wbs_timeout_s = wbs_timeout_s
    tb = cluster.build(config=config, num_partners=1)
    world = MigrRdmaWorld(tb)
    sender = PerftestEndpoint(tb.source, world=world, mode="write",
                              msg_size=msg_size, depth=depth)
    receiver = PerftestEndpoint(tb.partners[0], world=world, mode="write",
                                msg_size=msg_size, depth=depth)

    def setup():
        yield from sender.setup(qp_budget=1)
        yield from receiver.setup(qp_budget=1)
        yield from connect_endpoints(sender, receiver, qp_count=1)

    tb.run(setup())
    sender.start_as_sender()

    def scenario():
        yield tb.sim.timeout(5e-3)
        migration = LiveMigration(world, sender.container, tb.destination)
        reports.append((yield from migration.run()))
        yield tb.sim.timeout(30e-3)
        sender.stop()
        yield tb.sim.timeout(20e-3)

    reports = []
    tb.run(scenario(), limit=300.0)
    report = reports[0]
    conn = sender.connections[0]
    return {
        "wbs_timeout_s": wbs_timeout_s,
        "inflight_bytes": depth * msg_size,
        "link_rate_bps": tb.config.link.rate_bps,
        "wbs_elapsed_s": report.wbs_elapsed_s,
        "wbs_timed_out": report.wbs_timed_out,
        "blackout_s": report.blackout_s,
        "completed": sender.stats.completed,
        "order_errors": len(sender.stats.order_errors),
        "status_errors": len(sender.stats.status_errors),
        "clean": sender.stats.clean,
        "exactly_once": conn.completed == conn.next_seq - conn.outstanding,
    }


def torture_run(seed: int, index: int, scenarios: str = "all",
                rpc_loss: Optional[float] = None,
                kill_dest_at: Optional[str] = None,
                partition: Optional[float] = None,
                kill_scheduler_at: Optional[str] = None):
    """One torture case; returns the (picklable) TortureOutcome."""
    from repro.chaos.torture import run_case, sample_case

    return run_case(sample_case(seed, index, scenarios,
                                rpc_loss=rpc_loss,
                                kill_dest_at=kill_dest_at,
                                partition=partition,
                                kill_scheduler_at=kill_scheduler_at))


def recovery_run(seed: int = 0, rpc_loss: float = 0.05,
                 kill_dest_at: str = "precopy-dumped", down_s: float = 18e-3,
                 budget: int = 3, num_qps: int = 2, msg_size: int = 65536,
                 depth: int = 8) -> Dict[str, object]:
    """One supervised-recovery point: crash the destination daemon at a
    phase boundary, watch the failure detector force a rollback, and let
    the :class:`~repro.resilience.MigrationSupervisor` retry until the
    migration lands (BENCH-style recovery cell).

    Control-plane RPCs are additionally dropped with probability
    ``rpc_loss`` for the whole run, exercising the retry/backoff layer on
    every attempt.  All chaos invariants (including ``service-continuity``)
    run afterwards, and the digest pins ``--jobs N`` determinism.
    """
    from repro import cluster
    from repro.apps.perftest import PerftestEndpoint, connect_endpoints
    from repro.chaos import FaultPlan
    from repro.chaos.invariants import DEFAULT_REGISTRY, InvariantContext, run_digest
    from repro.chaos.torture import quiesce
    from repro.core import MigrRdmaWorld
    from repro.resilience import MigrationSupervisor

    wall_start = time.perf_counter()
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    kwargs = dict(world=world, mode="write", msg_size=msg_size, depth=depth,
                  verify_content=True)
    sender = PerftestEndpoint(tb.source, name="tx", **kwargs)
    receiver = PerftestEndpoint(tb.partners[0], name="rx", **kwargs)

    def setup():
        yield from sender.setup(qp_budget=num_qps)
        yield from receiver.setup(qp_budget=num_qps)
        yield from connect_endpoints(sender, receiver, qp_count=num_qps)

    tb.run(setup())
    plan = FaultPlan(seed=seed, name=f"recovery-{seed}")
    if rpc_loss:
        plan.drop(rpc_loss, protocol="tcp", payload_kind="rpc",
                  start_s=0.0, end_s=30.0)
    plan.daemon_crash("dest", kill_dest_at, down_s)
    plan.install(tb)
    sender.start_as_sender()
    reports = []

    def flow():
        yield tb.sim.timeout(2e-3)
        supervisor = MigrationSupervisor(world, sender.container,
                                         tb.destination, budget=budget,
                                         chaos=plan)
        reports.append((yield from supervisor.run()))
        yield tb.sim.timeout(3e-3)
        yield from quiesce(tb, [sender, receiver])

    tb.run(flow(), limit=1200.0)
    ctx = InvariantContext(tb, world=world, endpoints=[sender, receiver],
                           pairs=[(sender, receiver)], reports=reports,
                           plan=plan)
    inv = DEFAULT_REGISTRY.run(ctx)
    wall_s = time.perf_counter() - wall_start
    report = reports[0]
    stats = world.control.stats
    return {
        "seed": seed,
        "rpc_loss": rpc_loss,
        "kill_dest_at": kill_dest_at,
        "down_s": down_s,
        "attempts": report.attempts,
        "completed": not report.aborted,
        "rolled_back_attempts": sum(1 for a in report.attempts
                                    if a["rolled_back"]),
        "rolled_forward": report.rolled_forward,
        "blackout_ms": None if report.blackout_s is None
        else report.blackout_s * 1e3,
        "resilience": stats.as_dict(),
        "sim_now": tb.sim.now,
        "events_processed": tb.sim.events_processed,
        "wall_s": wall_s,
        "invariants_ok": inv.ok,
        "violations": [f"{name}: {message}" for name, message in inv.violations],
        "digest": run_digest(ctx, inv),
    }


def scale_run(num_qps: int, msg_size: int = 65536, depth: int = 8,
              mode: str = "write", trigger_s: float = 2e-3,
              presetup: bool = True) -> Dict[str, object]:
    """Large-fanout migration with full invariant checking (BENCH_scale).

    Mirrors the torture harness's perftest case — including the post-run
    quiesce drain and every registered chaos invariant — but fault-free and at
    datacenter fan-out (256/1024 QPs), so the result certifies that the
    indirection tables, WBS drain and go-back-N machinery stay *correct*
    at scale while the wall-clock figures say whether they stay *fast*.
    """
    from repro import cluster
    from repro.apps.perftest import PerftestEndpoint, connect_endpoints
    from repro.chaos.invariants import DEFAULT_REGISTRY, InvariantContext, run_digest
    from repro.chaos.torture import quiesce
    from repro.core import LiveMigration, MigrRdmaWorld

    wall_start = time.perf_counter()
    tb = cluster.build(num_partners=1)
    world = MigrRdmaWorld(tb)
    kwargs = dict(world=world, mode=mode, msg_size=msg_size, depth=depth,
                  verify_content=mode in ("write", "send"))
    sender = PerftestEndpoint(tb.source, name="tx", **kwargs)
    receiver = PerftestEndpoint(tb.partners[0], name="rx", **kwargs)

    def setup():
        yield from sender.setup(qp_budget=num_qps)
        yield from receiver.setup(qp_budget=num_qps)
        yield from connect_endpoints(sender, receiver, qp_count=num_qps)

    tb.run(setup())
    if mode == "send":
        receiver.start_as_receiver()
    sender.start_as_sender()
    reports = []

    def flow():
        yield tb.sim.timeout(trigger_s)
        migration = LiveMigration(world, sender.container, tb.destination,
                                  presetup=presetup)
        reports.append((yield from migration.run()))
        yield tb.sim.timeout(3e-3)
        yield from quiesce(tb, [sender, receiver])

    tb.run(flow(), limit=1200.0)
    ctx = InvariantContext(tb, world=world, endpoints=[sender, receiver],
                           pairs=[(sender, receiver)], reports=reports)
    inv = DEFAULT_REGISTRY.run(ctx)
    wall_s = time.perf_counter() - wall_start
    report = reports[0]
    return {
        "num_qps": num_qps,
        "msg_size": msg_size,
        "depth": depth,
        "sim_now": tb.sim.now,
        "events_processed": tb.sim.events_processed,
        "events_cancelled": tb.sim.events_cancelled,
        "wall_s": wall_s,
        "events_per_sec": tb.sim.events_processed / wall_s if wall_s else 0.0,
        "blackout_ms": report.blackout_s * 1e3,
        "wbs_elapsed_us": report.wbs_elapsed_s * 1e6,
        "invariants_checked": list(inv.checked),
        "invariants_ok": inv.ok,
        "violations": [f"{name}: {message}" for name, message in inv.violations],
        "digest": run_digest(ctx, inv),
        # Speed-path accounting (never digested; see Metrics.scrape_perf):
        # which scheduler ran, how many events the express lane absorbed.
        "scheduler": tb.sim.scheduler_stats()["scheduler"],
        "events_credited": tb.sim.events_credited,
        "flow_expressed": sum(s.rnic.flow_expressed for s in tb.servers),
        "flow_fallbacks": sum(s.rnic.flow_fallbacks for s in tb.servers),
        "flow_materialized": sum(s.rnic.flow_materialized for s in tb.servers),
    }


def fleet_run(racks: int = 2, hosts_per_rack: int = 4, containers: int = 16,
              policy: str = "drain", target: str = "rack0", seed: int = 7,
              concurrency: int = 4, placement: str = "least-loaded",
              oversubscription: float = 4.0,
              kill_host: Optional[str] = None, kill_at: float = 0.05,
              kill_down_s: float = 0.05,
              degrade_rack: Optional[str] = None,
              degrade_start_s: float = 0.0, degrade_end_s: float = 0.5,
              degrade_factor: float = 4.0,
              kv_pairs: int = 0,
              partition_hosts: Optional[str] = None,
              partition_start_s: float = 5e-3,
              partition_dur_s: float = 2e-3,
              kill_scheduler_at: Optional[float] = None,
              scheduler_down_s: float = 20e-3) -> Dict[str, object]:
    """One fleet point: build a fleet, run a scheduling policy under
    admission control, check every invariant (including
    ``fleet-placement`` and ``lease-fencing``), and return the digested
    outcome.

    ``concurrency`` sets every :class:`~repro.fleet.AdmissionLimits` cap,
    so the fleet-wide limit is the binding one — that's the knob the
    experiments CLI sweeps to show trunk contention.  ``kill_host``
    schedules a :class:`~repro.chaos.HostKill` at ``kill_at`` (the
    torture overlay: a host dies mid-drain and the supervisors reroute);
    ``degrade_rack`` slows that rack's ToR trunk by ``degrade_factor``.
    ``partition_hosts`` (``"hostA:hostB"``) severs both directions of
    that pair — control RPCs and RDMA alike — for ``partition_dur_s``
    starting ``partition_start_s`` after traffic starts;
    ``kill_scheduler_at`` crashes the scheduler that long into the drain
    and lets :func:`~repro.fleet.drain_with_recovery` resume it from the
    journal after ``scheduler_down_s``.
    """
    from repro.chaos import FaultPlan
    from repro.chaos.invariants import DEFAULT_REGISTRY, InvariantContext, run_digest
    from repro.fleet import (AdmissionLimits, MigrationScheduler,
                             SchedulerJournal, build_fleet,
                             drain_with_recovery)

    wall_start = time.perf_counter()
    fleet = build_fleet(racks=racks, hosts_per_rack=hosts_per_rack,
                        containers=containers,
                        oversubscription=oversubscription, seed=seed,
                        kv_pairs=kv_pairs)
    fleet.run(fleet.setup())
    plan = FaultPlan(seed=seed, name=f"fleet-{seed}")
    if kill_host is not None:
        plan.host_kill(kill_host, at_s=fleet.sim.now + kill_at,
                       down_s=kill_down_s)
    if degrade_rack is not None:
        plan.degrade_uplink(degrade_rack,
                            start_s=fleet.sim.now + degrade_start_s,
                            end_s=fleet.sim.now + degrade_end_s,
                            factor=degrade_factor)
    if partition_hosts is not None:
        host_a, _, host_b = partition_hosts.partition(":")
        plan.partition(host_a, host_b,
                       start_s=fleet.sim.now + partition_start_s,
                       end_s=fleet.sim.now + partition_start_s
                       + partition_dur_s)
    if kill_scheduler_at is not None:
        plan.scheduler_crash(fleet.sim.now + kill_scheduler_at,
                             down_s=scheduler_down_s)
    chaos = None
    if not plan.is_noop:
        plan.install(fleet)
        chaos = plan
    fleet.start_traffic()
    limits = AdmissionLimits(fleet=concurrency, per_host=concurrency,
                             per_rack=concurrency, per_uplink=concurrency)
    scheduler = MigrationScheduler(fleet, limits=limits, placement=placement,
                                   chaos=chaos)
    jobs = scheduler.plan(policy, target)
    journal = SchedulerJournal()

    def flow():
        freport = yield from drain_with_recovery(scheduler, jobs,
                                                 journal=journal)
        yield fleet.sim.timeout(3e-3)
        yield from fleet.quiesce()
        return freport

    report = fleet.run(flow(), limit=1200.0)
    ctx = InvariantContext(fleet, world=fleet.world,
                           endpoints=fleet.endpoints, pairs=fleet.pairs,
                           reports=journal.migration_reports, plan=chaos,
                           fleet=fleet)
    inv = DEFAULT_REGISTRY.run(ctx)
    wall_s = time.perf_counter() - wall_start
    return {
        "racks": racks,
        "hosts": racks * hosts_per_rack,
        "containers": containers,
        "policy": policy,
        "target": target,
        "seed": seed,
        "concurrency": concurrency,
        "placement": placement,
        "oversubscription": oversubscription,
        "kill_host": kill_host,
        "degrade_rack": degrade_rack,
        "partition_hosts": partition_hosts,
        "kill_scheduler_at": kill_scheduler_at,
        "scheduler_crashes": journal.crashes,
        "journal_log": list(journal.log),
        "jobs_planned": len(jobs),
        "migrations": report.migrations,
        "completed": report.completed,
        "failed": report.failed,
        "max_concurrency": report.max_concurrency,
        "drain_s": report.drain_completion_s,
        "blackout": report.blackout_summary(),
        "links": report.link_stats,
        "link_peak_backlog": dict(report.link_peak_backlog),
        "outcomes": [o.line() for o in report.outcomes],
        "attempts_total": sum(o.attempts for o in report.outcomes),
        "kv_pairs": kv_pairs,
        "kv_gets": sum(c.stats.gets for c in fleet.kv_clients),
        "kv_puts": sum(c.stats.puts for c in fleet.kv_clients),
        "chaos": None if chaos is None else chaos.stats.as_dict(),
        "invariants_checked": list(inv.checked),
        "invariants_ok": inv.ok,
        "violations": [f"{name}: {message}" for name, message in inv.violations],
        "digest": run_digest(ctx, inv),
        "fleet_digest": report.digest(),
        "sim_now": fleet.sim.now,
        "events_processed": fleet.sim.events_processed,
        "wall_s": wall_s,
    }


def kvstore_run(seed: int = 7, n_clients: int = 2, keyspace: int = 48,
                value_len: int = 32, depth: int = 4, n_buckets: int = 128,
                noise: bool = True, noise_limit_gbps: Optional[float] = 40.0,
                noise_msg_size: int = 65536, noise_depth: int = 8,
                qos: bool = True, migrate: bool = True,
                trigger_s: float = 2e-3, settle_s: float = 3e-3,
                readback_keys: int = 4) -> Dict[str, object]:
    """One noisy-neighbour KV point (BENCH_kv / ``experiments kv``).

    A KV server on partner0 serves ``n_clients`` clients of tenant
    ``"victim"`` living on the source host; a perftest WRITE stream of
    tenant ``"noisy"`` shares the victim's egress NIC and blasts at
    partner1 for the whole run.  Mid-traffic the first victim client is
    live-migrated to the destination host.  With ``qos`` on, the noisy
    tenant is token-bucket shaped to ``noise_limit_gbps`` and the result
    reports whether its metered bytes stayed inside the bucket's
    admission bound; with it off (or ``noise_limit_gbps=None``) the run
    must stay bit-identical to an unshaped one — :data:`NicQoS.reserve`
    inserts zero events for unshaped tenants, and the determinism pin
    (``tests/integration/test_kv_determinism.py``) holds us to it.

    Every registered chaos invariant (including ``kv-linearizable``)
    and the full :class:`~repro.apps.contract.WorkloadHarness` run at
    the end; the returned dict carries victim GET latency percentiles,
    blackout, the neighbour's shaped throughput, and the digest that
    pins ``--jobs N`` equivalence.
    """
    from repro import cluster
    from repro.apps.contract import WorkloadHarness, run_contract
    from repro.apps.kvstore import KvClient, KvServer, connect_kv
    from repro.apps.perftest import (PerftestEndpoint, connect_endpoints,
                                     latency_percentiles)
    from repro.chaos.invariants import DEFAULT_REGISTRY, InvariantContext, run_digest
    from repro.chaos.torture import quiesce
    from repro.core import LiveMigration, MigrRdmaWorld
    from repro.rnic import TenantSpec, install_qos

    wall_start = time.perf_counter()
    tb = cluster.build(num_partners=2)
    world = MigrRdmaWorld(tb)
    if qos:
        specs = [TenantSpec("victim", max_qps=n_clients + 2)]
        if noise:
            rate = None if noise_limit_gbps is None else noise_limit_gbps * 1e9
            specs.append(TenantSpec("noisy", rate_bps=rate))
        install_qos(tb.servers, specs)

    keys = [f"key{i:04d}" for i in range(keyspace)]
    kv = KvServer(tb.partners[0], name="kv", world=world,
                  n_buckets=n_buckets, value_cap=max(64, value_len),
                  depth=32)
    clients = [KvClient(tb.source, kv, name=f"kv-c{i}", world=world,
                        keyspace=keys, value_len=value_len, depth=depth,
                        seed=seed, tenant="victim" if qos else None)
               for i in range(n_clients)]
    ntx = nrx = None
    if noise:
        nkwargs = dict(world=world, mode="write", msg_size=noise_msg_size,
                       depth=noise_depth, verify_content=True)
        ntx = PerftestEndpoint(tb.source, name="noise-tx",
                               tenant="noisy" if qos else None, **nkwargs)
        nrx = PerftestEndpoint(tb.partners[1], name="noise-rx", **nkwargs)

    def setup():
        yield from kv.setup(client_budget=n_clients)
        kv.preload(keys, value_len)
        for client in clients:
            yield from client.setup()
            yield from connect_kv(kv, client)
        if noise:
            yield from ntx.setup(qp_budget=1)
            yield from nrx.setup(qp_budget=1)
            yield from connect_endpoints(ntx, nrx, qp_count=1)

    tb.run(setup())
    t_traffic = tb.sim.now
    kv.start()
    for client in clients:
        client.start()
    if noise:
        ntx.start_as_sender()
    reports = []
    endpoints = [*clients, kv] + ([ntx, nrx] if noise else [])

    def flow():
        yield tb.sim.timeout(trigger_s)
        if migrate:
            migration = LiveMigration(world, clients[0].container,
                                      tb.destination, presetup=True)
            reports.append((yield from migration.run()))
        yield tb.sim.timeout(settle_s)
        yield from quiesce(tb, endpoints)

    tb.run(flow(), limit=1200.0)
    t_stop = tb.sim.now

    # Post-quiesce freshness sweep: the table is frozen, so a one-sided
    # READ from the (migrated) victim must see exactly the last applied
    # version of every probed key.
    freshness = []

    def sweep():
        for key in keys[:readback_keys]:
            log = kv.kv_applies.get(key)
            floor = log[-1][0] if log else 0
            got = yield from clients[0].readback(key)
            freshness.append((key, got[1] if got else -1, floor))

    tb.run(sweep(), limit=30.0)

    capabilities = {"accounting", "delivery", "history", "cas", "freshness"}
    qos_probes = []
    if qos and noise and noise_limit_gbps is not None:
        capabilities.add("qos")
        qos_probes = [(tb.source.rnic, "noisy", t_stop - t_traffic,
                       noise_depth * noise_msg_size)]
    harness = WorkloadHarness(
        name="kvstore", capabilities=frozenset(capabilities),
        endpoints=tuple(endpoints), pairs=(),
        kv_clients=tuple(clients), kv_server=kv,
        freshness_probes=tuple(freshness), qos_probes=tuple(qos_probes))
    contract = run_contract(harness)

    ctx = InvariantContext(tb, world=world, endpoints=endpoints,
                           pairs=[(ntx, nrx)] if noise else [],
                           reports=reports,
                           workload_errors=[f"contract/{c}: {m}"
                                            for c, m in contract])
    inv = DEFAULT_REGISTRY.run(ctx)
    wall_s = time.perf_counter() - wall_start

    rtts = sorted(lat for client in clients for lat in client.get_latencies)
    pcts = latency_percentiles(rtts) if rtts else {50: 0.0, 99: 0.0}
    out = {
        "seed": seed,
        "n_clients": n_clients,
        "noise": noise,
        "noise_limit_gbps": noise_limit_gbps,
        "qos": qos,
        "migrate": migrate,
        "puts": sum(c.stats.puts for c in clients),
        "gets": sum(c.stats.gets for c in clients),
        "get_misses": sum(c.stats.get_misses for c in clients),
        "cas_attempts": sum(c.stats.cas_attempts for c in clients),
        "cas_acquired": sum(c.stats.cas_acquired for c in clients),
        "victim_get_p50_us": pcts[50] * 1e6,
        "victim_get_p99_us": pcts[99] * 1e6,
        "blackout_ms": reports[0].blackout_s * 1e3 if reports else None,
        "contract_violations": [f"{check}: {message}"
                                for check, message in contract],
        "invariants_checked": list(inv.checked),
        "invariants_ok": inv.ok,
        "violations": [f"{name}: {message}" for name, message in inv.violations],
        "digest": run_digest(ctx, inv),
        "sim_now": tb.sim.now,
        "events_processed": tb.sim.events_processed,
        "wall_s": wall_s,
    }
    if noise:
        elapsed = t_stop - t_traffic
        done_bytes = ntx.stats.completed * noise_msg_size
        out["noise_gbps"] = done_bytes * 8 / elapsed / 1e9 if elapsed else 0.0
        if qos:
            st = tb.source.rnic.qos.state("noisy")
            allowed = tb.source.rnic.qos.allowed_bytes(
                "noisy", elapsed, slack_bytes=noise_depth * noise_msg_size)
            out["noise_tx_bytes"] = st.tx_bytes if st else 0
            out["noise_allowed_bytes"] = allowed
            out["noise_within_bound"] = (allowed is None or st is None
                                         or st.tx_bytes <= allowed)
            out["noise_throttle_events"] = st.throttle_events if st else 0
    return out


def simperf_round(num_qps: int, msg_size: int = 65536,
                  depth: int = 8) -> Dict[str, object]:
    """One round of the simperf reference scenario (BENCH_simperf).

    Times only the migration flow (setup excluded), matching what
    ``BENCH_simperf.json`` has always recorded.
    """
    tb, world, sender, receiver, mover = _setup_migration(
        num_qps, "sender", msg_size=msg_size, depth=depth)
    wall_start = time.perf_counter()
    report, _sampler = _run_migration_flow(tb, world, sender, receiver, mover,
                                           presetup=True)
    wall_s = time.perf_counter() - wall_start
    if tb.sim.failed_processes:
        raise AssertionError(
            f"background failures: {tb.sim.failed_processes[:2]}")
    return {
        "num_qps": num_qps,
        "sim_now": tb.sim.now,
        "events_processed": tb.sim.events_processed,
        "events_cancelled": tb.sim.events_cancelled,
        "wall_s": wall_s,
        "events_per_sec": tb.sim.events_processed / wall_s if wall_s else 0.0,
        "blackout_ms": report.blackout_s * 1e3,
        "scheduler": tb.sim.scheduler_stats()["scheduler"],
        "events_credited": tb.sim.events_credited,
        "flow_expressed": sum(s.rnic.flow_expressed for s in tb.servers),
    }
