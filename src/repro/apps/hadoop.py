"""RDMA-Hadoop workload (Figure 6, §5.6).

A model of the HiBD RDMA-Hadoop deployment the paper migrates: a master
and two slave containers; the master assigns a task to slave1 and the
operator needs to take slave1's server down for maintenance.  Two ways out:

- **MigrRDMA**: live-migrate the slave container (the application binary is
  untouched — the task object only uses the verbs surface plus its own
  Python state, the analogue of restored process memory),
- **failover** (the baseline Hadoop relies on without RDMA live
  migration): the master detects the lost heartbeat, starts a backup
  container on another server, replays the task log and re-runs the
  unfinished work.

Two task types, as in the paper:

- ``TestDFSIO`` — HDFS write throughput: the slave streams file blocks to
  the replication datanode over RDMA WRITE, paced at the HDFS-level
  goodput, reporting per-interval throughput,
- ``EstimatePI`` — compute-bound Monte-Carlo sampling with periodic
  progress heartbeats (no throughput result, matching the paper).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster import Container, Server, Testbed
from repro.config import MiB
from repro.rnic import AccessFlags, Opcode, QPType, RecvWR, SendWR
from repro.sim import Interrupt
from repro.verbs.api import make_sge

_node_ids = itertools.count(1)

BLOCK_BYTES = 4 * MiB
DATA_DEPTH = 8
CTRL_MSG_BYTES = 256
CTRL_DEPTH = 256


class HadoopNode:
    """One Hadoop daemon (master / datanode) in its own container."""

    def __init__(self, server: Server, world, name: str):
        self.server = server
        self.world = world
        self.name = name
        self.container = server.create_container(f"{name}-ct")
        self.process = self.container.add_process(name)
        self.lib = world.make_lib(self.process, self.container)
        self.pd = None
        self.cq = None
        self.mr = None
        self.buf_addr = 0
        self.buf_len = 0

    def setup(self, buf_len: int):
        """Generator: PD, CQ and one registered buffer of ``buf_len``."""
        self.pd = yield from self.lib.alloc_pd()
        self.cq = yield from self.lib.create_cq(8192)
        vma = self.process.space.mmap(buf_len, tag="data", name=f"{self.name}-buf")
        self.buf_addr = vma.start
        self.buf_len = vma.length
        self.mr = yield from self.lib.reg_mr(
            self.pd, self.buf_addr, buf_len, AccessFlags.all_remote())

    def create_connected_qp(self, peer: "HadoopNode", depth: int):
        """Generator: one RC QP pair between self and peer; returns both."""
        mine = yield from self.lib.create_qp(
            self.pd, QPType.RC, self.cq, self.cq, depth, depth)
        theirs = yield from peer.lib.create_qp(
            peer.pd, QPType.RC, peer.cq, peer.cq, depth, depth)
        yield self.server.sim.timeout(50e-6)  # out-of-band exchange
        yield from self.lib.connect(mine, peer.server.name, theirs.qpn)
        yield from peer.lib.connect(theirs, self.server.name, mine.qpn)
        return mine, theirs


@dataclass
class Heartbeat:
    """One progress report from a slave, as recorded by the master."""

    node: str
    time_s: float
    completed_files: int
    bytes_done: int
    samples_done: int
    finished: bool


@dataclass
class TaskResult:
    """Outcome of one Hadoop task: completion time and progress marks."""

    jct_s: float = 0.0
    #: (time, cumulative payload bytes) marks for throughput timelines
    progress: List[Tuple[float, int]] = field(default_factory=list)
    total_bytes: int = 0
    finished: bool = False
    redone_bytes: int = 0

    def aggregate_tput_gbps(self) -> float:
        """DFSIO's reported metric: payload bytes over job completion time."""
        if self.jct_s <= 0:
            raise ValueError("task did not run")
        return self.total_bytes * 8 / self.jct_s / 1e9

    def interval_tput_gbps(self, interval_s: float = 0.5) -> List[Tuple[float, float]]:
        """Resampled throughput timeline."""
        if not self.progress:
            return []
        out = []
        t0 = self.progress[0][0]
        end = self.progress[-1][0]
        marks = iter(self.progress)
        last_t, last_b = t0, 0
        current = t0 + interval_s
        done_b = 0
        for t, b in self.progress:
            while t > current:
                out.append((current, (done_b - last_b) * 8 / interval_s / 1e9))
                last_b = done_b
                current += interval_s
            done_b = b
        return out


class DfsioTask:
    """TestDFSIO write test running inside slave1's container."""

    def __init__(self, cluster: "HadoopCluster", nfiles: int, file_bytes: int,
                 start_file: int = 0):
        self.cluster = cluster
        self.nfiles = nfiles
        self.file_bytes = file_bytes
        self.completed_files = start_file
        self.bytes_done = start_file * file_bytes
        self.result = TaskResult()
        self.running = False
        self._outstanding = 0
        self._seq = 0
        # Posting progress within the current file: part of the task state
        # so a restored loop resumes mid-file instead of starting it over.
        self._blocks_posted_in_file = 0

    @property
    def finished(self) -> bool:
        return self.completed_files >= self.nfiles

    def start(self) -> None:
        """Launch (or resume) the block-writing loop in the slave process."""
        self.running = True
        node = self.cluster.slave
        node.process.attach(node.server.sim.spawn(self._run(), name="dfsio"))

    def _run(self):
        cluster = self.cluster
        node = cluster.slave
        sim = node.server.sim
        cfg = cluster.tb.config.hadoop
        block_gap = BLOCK_BYTES * 8 / cfg.dfsio_app_goodput_bps
        started = sim.now
        try:
            while self.running and not self.finished:
                blocks = self.file_bytes // BLOCK_BYTES
                while self._blocks_posted_in_file < blocks:
                    yield from node.container.wait_if_paused(sim)
                    while self._outstanding >= DATA_DEPTH:
                        yield from self._drain(node, sim)
                    self._post_block(node)
                    self._blocks_posted_in_file += 1
                    yield sim.timeout(block_gap)  # HDFS-level processing
                while self._outstanding > 0:
                    yield from self._drain(node, sim)
                self.completed_files += 1
                self._blocks_posted_in_file = 0
                self.result.progress.append((sim.now, self.bytes_done))
            self.result.finished = self.finished
            self.result.jct_s = sim.now - cluster.task_started_at
            self.result.total_bytes = self.bytes_done
            self.running = False
        except Interrupt:
            return

    def _post_block(self, node: HadoopNode) -> None:
        conn_qp = self.cluster.data_qp
        slot = self._seq % DATA_DEPTH
        wr = SendWR(
            wr_id=self._seq, opcode=Opcode.RDMA_WRITE,
            sges=[make_sge(node.mr, slot * BLOCK_BYTES, BLOCK_BYTES)],
            remote_addr=self.cluster.remote_data_addr + slot * BLOCK_BYTES,
            rkey=self.cluster.remote_data_rkey)
        node.lib.post_send(conn_qp, wr)
        self._seq += 1
        self._outstanding += 1

    def _drain(self, node: HadoopNode, sim):
        wcs = node.lib.poll_cq(node.cq, 16)
        if not wcs:
            yield sim.timeout(5e-6)
            return
        for wc in wcs:
            if wc.opcode is not Opcode.RDMA_WRITE:
                continue  # heartbeat SENDs share the CQ
            if not wc.ok:
                raise RuntimeError(f"DFSIO block failed: {wc.status}")
            self._outstanding -= 1
            self.bytes_done += BLOCK_BYTES
            self.result.progress.append((sim.now, self.bytes_done))

    # migration transparency --------------------------------------------------

    def on_migrated(self, session, restored: Container) -> None:
        """Migration hook: re-home the node and resume mid-file."""
        node = self.cluster.slave
        node.container = restored
        node.process = session.processes[node.process.pid]
        node.server = restored.server
        if self.running:
            node.process.attach(node.server.sim.spawn(self._run(), name="dfsio"))


class EstimatePiTask:
    """Compute-bound Monte-Carlo pi estimation."""

    def __init__(self, cluster: "HadoopCluster", samples: int, start_done: int = 0):
        self.cluster = cluster
        self.samples = samples
        self.samples_done = start_done
        self.result = TaskResult()
        self.running = False

    @property
    def finished(self) -> bool:
        return self.samples_done >= self.samples

    @property
    def bytes_done(self) -> int:
        return 0

    @property
    def completed_files(self) -> int:
        return 0

    def start(self) -> None:
        """Launch (or resume) the sampling loop in the slave process."""
        self.running = True
        node = self.cluster.slave
        node.process.attach(node.server.sim.spawn(self._run(), name="estimate-pi"))

    def _run(self):
        cluster = self.cluster
        node = cluster.slave
        sim = node.server.sim
        cfg = cluster.tb.config.hadoop
        tick = cfg.progress_report_interval_s
        try:
            while self.running and not self.finished:
                yield from node.container.wait_if_paused(sim)
                yield sim.timeout(tick)
                self.samples_done += int(tick * cfg.estimatepi_compute_rate)
                self.result.progress.append((sim.now, self.samples_done))
            self.result.finished = self.finished
            self.result.jct_s = sim.now - cluster.task_started_at
            self.result.total_bytes = 0
            self.running = False
        except Interrupt:
            return

    def on_migrated(self, session, restored: Container) -> None:
        node = self.cluster.slave
        node.container = restored
        node.process = session.processes[node.process.pid]
        node.server = restored.server
        if self.running:
            node.process.attach(node.server.sim.spawn(self._run(), name="estimate-pi"))


class HadoopCluster:
    """Master + two slaves; slave1 runs the task and is the maintenance
    target.  Needs a testbed with >= 2 partner servers (master and the
    replication datanode live on partners; slave1 on the source)."""

    def __init__(self, tb: Testbed, world):
        if len(tb.partners) < 2:
            raise ValueError("HadoopCluster needs a testbed with >= 2 partners")
        self.tb = tb
        self.world = world
        self.sim = tb.sim
        self.master = HadoopNode(tb.partners[0], world, f"hdp-master{next(_node_ids)}")
        self.slave = HadoopNode(tb.source, world, f"hdp-slave1-{next(_node_ids)}")
        self.datanode = HadoopNode(tb.partners[1], world, f"hdp-slave2-{next(_node_ids)}")

        self.data_qp = None  # slave -> datanode
        self.ctrl_qp = None  # slave -> master
        self.remote_data_addr = 0
        self.remote_data_rkey = 0
        self.task = None
        self.task_started_at = 0.0
        self.heartbeats: List[Heartbeat] = []
        self._hb_process = None
        self._master_recv_conns: List = []
        self._master_qp_by_vqpn: Dict[int, object] = {}

    # -- setup ------------------------------------------------------------

    def setup(self, slave_heap_bytes: Optional[int] = None,
              slave_heap_dirty_bps: Optional[float] = None):
        """Generator: bring up all three daemons, the data/control QPs and
        the slave's JVM-heap model (defaults from HadoopConfig)."""
        cfg = self.tb.config.hadoop
        yield from self.master.setup(CTRL_DEPTH * CTRL_MSG_BYTES * 2)
        yield from self.slave.setup(DATA_DEPTH * BLOCK_BYTES + CTRL_MSG_BYTES * CTRL_DEPTH)
        yield from self.datanode.setup(DATA_DEPTH * BLOCK_BYTES)
        self.slave.process.set_synthetic_heap(
            cfg.slave_heap_bytes if slave_heap_bytes is None else slave_heap_bytes,
            cfg.slave_heap_dirty_bps if slave_heap_dirty_bps is None
            else slave_heap_dirty_bps)

        self.data_qp, _dn_qp = yield from self.slave.create_connected_qp(
            self.datanode, DATA_DEPTH * 2)
        self.remote_data_addr = self.datanode.buf_addr
        self.remote_data_rkey = self.datanode.mr.rkey

        self.ctrl_qp, master_qp = yield from self.slave.create_connected_qp(
            self.master, CTRL_DEPTH)
        self._add_master_conn(master_qp)
        self.sim.spawn(self._master_loop(), name="hdp-master-loop")

    def _add_master_conn(self, qp) -> None:
        self._master_recv_conns.append(qp)
        self._master_qp_by_vqpn[qp.qpn] = qp
        self._prepost_master_recvs(qp)

    def _prepost_master_recvs(self, qp) -> None:
        for i in range(CTRL_DEPTH // 2):
            self.master.lib.post_recv(qp, RecvWR(
                wr_id=i, sges=[make_sge(self.master.mr,
                                        (i % CTRL_DEPTH) * CTRL_MSG_BYTES,
                                        CTRL_MSG_BYTES)]))

    # -- task + heartbeats ---------------------------------------------------

    def submit(self, task) -> None:
        """Master assigns the task to slave1 and starts heartbeats."""
        self.task = task
        self.task_started_at = self.sim.now
        task.start()
        self._hb_process = self.slave.process.attach(
            self.sim.spawn(self._heartbeat_loop(), name="hdp-heartbeat"))
        self.slave.container.apps.append(task)
        self.slave.container.apps.append(self)

    def _heartbeat_loop(self):
        cfg = self.tb.config.hadoop
        seq = itertools.count()
        try:
            while self.task is not None and self.task.running:
                yield self.sim.timeout(cfg.heartbeat_interval_s)
                self._send_heartbeat(next(seq))
            if self.task is not None:
                self._send_heartbeat(next(seq), finished=True)
        except Interrupt:
            return

    def _send_heartbeat(self, seq: int, finished: bool = False) -> None:
        payload_addr = self.slave.buf_addr + DATA_DEPTH * BLOCK_BYTES
        blob = (f"{self.slave.name},{self.task.completed_files},"
                f"{self.task.bytes_done},{getattr(self.task, 'samples_done', 0)},"
                f"{int(finished or self.task.finished)}").encode()
        self.slave.process.space.write(payload_addr, blob[:CTRL_MSG_BYTES])
        self.slave.lib.post_send(self.ctrl_qp, SendWR(
            wr_id=1_000_000 + seq, opcode=Opcode.SEND,
            sges=[make_sge(self.slave.mr, DATA_DEPTH * BLOCK_BYTES,
                           min(len(blob), CTRL_MSG_BYTES))]))

    def _master_loop(self):
        while True:
            wcs = self.master.lib.poll_cq(self.master.cq, 32)
            for wc in wcs:
                if wc.opcode is Opcode.RECV and wc.ok:
                    self._record_heartbeat(wc)
                    qp = self._master_qp_by_vqpn.get(wc.qp_num)
                    if qp is not None:
                        self.master.lib.post_recv(qp, RecvWR(
                            wr_id=wc.wr_id,
                            sges=[make_sge(self.master.mr,
                                           (wc.wr_id % CTRL_DEPTH) * CTRL_MSG_BYTES,
                                           CTRL_MSG_BYTES)]))
            yield self.sim.timeout(20e-3)

    def _record_heartbeat(self, wc) -> None:
        addr = self.master.buf_addr + (wc.wr_id % CTRL_DEPTH) * CTRL_MSG_BYTES
        blob = self.master.process.space.read(addr, wc.byte_len)
        try:
            node, files, nbytes, samples, finished = blob.decode().split(",")
        except ValueError:
            return
        self.heartbeats.append(Heartbeat(
            node=node, time_s=self.sim.now, completed_files=int(files),
            bytes_done=int(nbytes), samples_done=int(samples),
            finished=bool(int(finished))))

    def last_heartbeat(self) -> Optional[Heartbeat]:
        """The master's most recent view of the slave's progress."""
        return self.heartbeats[-1] if self.heartbeats else None

    # -- the MigrRDMA path hooks everything through the container; the
    # -- failover path is modelled by FailoverManager below -------------------

    def on_migrated(self, session, restored: Container) -> None:
        """Keep the heartbeat loop alive across migration."""
        if self._hb_process is not None and self.task is not None and self.task.running:
            self._hb_process = self.slave.process.attach(
                self.sim.spawn(self._heartbeat_loop(), name="hdp-heartbeat"))

    def wait_task(self, limit_s: float = 600.0):
        """Generator: wait until the submitted task finishes."""
        while self.task.running:
            yield self.sim.timeout(50e-3)
        return self.task.result


class FailoverManager:
    """Hadoop's native reliability path: heartbeat-timeout detection, a
    backup container, and log-replay recovery (§5.6)."""

    def __init__(self, cluster: HadoopCluster, backup_server: Server):
        self.cluster = cluster
        self.backup_server = backup_server
        self.sim = cluster.sim
        self.failed_over = False
        self.detected_at: Optional[float] = None
        self.recovered_at: Optional[float] = None

    def kill_slave(self) -> None:
        """Simulate taking the slave's server down without live migration."""
        task = self.cluster.task
        if task.result.finished:
            return  # the job beat the maintenance window; nothing to kill
        task.running = True  # the task is not done; its host just died
        self.cluster.slave.container.freeze()

    def monitor_and_recover(self):
        """Generator: master-side failure detection + recovery."""
        cfg = self.cluster.tb.config.hadoop
        cluster = self.cluster
        while True:
            yield self.sim.timeout(cfg.heartbeat_interval_s / 2)
            last = cluster.last_heartbeat()
            last_t = last.time_s if last else cluster.task_started_at
            if cluster.task.result.finished:
                return
            if self.sim.now - last_t >= cfg.failover_detect_timeout_s:
                break
        self.detected_at = self.sim.now
        # Start the backup container and replay the task log.
        yield self.sim.timeout(cfg.backup_container_start_s)
        backup = HadoopNode(self.backup_server, cluster.world,
                            f"hdp-backup{next(_node_ids)}")
        yield from backup.setup(DATA_DEPTH * BLOCK_BYTES + CTRL_MSG_BYTES * CTRL_DEPTH)
        data_qp, _ = yield from backup.create_connected_qp(cluster.datanode, DATA_DEPTH * 2)
        ctrl_qp, master_qp = yield from backup.create_connected_qp(
            cluster.master, CTRL_DEPTH)
        cluster._add_master_conn(master_qp)
        yield self.sim.timeout(cfg.task_log_replay_s)

        # Resume the task from the last logged progress (completed files /
        # last reported samples); the partially-done unit is redone.
        last = cluster.last_heartbeat()
        old_task = cluster.task
        cluster.slave = backup
        cluster.data_qp = data_qp
        cluster.ctrl_qp = ctrl_qp
        if isinstance(old_task, DfsioTask):
            start_file = last.completed_files if last else 0
            new_task = DfsioTask(cluster, old_task.nfiles, old_task.file_bytes,
                                 start_file=start_file)
            new_task.result = old_task.result
            new_task.result.redone_bytes = max(
                0, old_task.bytes_done - start_file * old_task.file_bytes)
        else:
            done = last.samples_done if last else 0
            new_task = EstimatePiTask(cluster, old_task.samples, start_done=done)
            new_task.result = old_task.result
        cluster.task = new_task
        new_task.start()
        cluster._hb_process = backup.process.attach(
            self.sim.spawn(cluster._heartbeat_loop(), name="hdp-heartbeat"))
        self.failed_over = True
        self.recovered_at = self.sim.now
