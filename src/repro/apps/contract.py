"""WorkloadContract: the app-conformance harness every workload rides.

Each application (perftest, Hadoop, kvstore, and whatever comes next)
packages one finished run into a :class:`WorkloadHarness` naming the
capabilities it supports; :func:`run_contract` then applies every check
the harness is capable of and returns the violations.  The pytest layer
(``tests/integration/test_workload_contract.py``) parametrizes one test
over all apps, replacing the per-app copies of "stats are clean /
everything posted completed / the receiver saw every send".

Checks, by capability:

- ``completion`` — the workload finished the work it was asked to do:
  each ``(label, done, expected)`` probe must agree exactly (perftest
  iterations, DFSIO payload bytes, …),
- ``accounting`` — WR-level conservation on every endpoint connection:
  nothing posted is still outstanding, completions match posts, and the
  completion sequence ended exactly at the post count,
- ``delivery`` — pairwise message conservation: each receiver consumed
  exactly as many messages as its sender completed,
- ``history`` — real-time linearizability of the KV history against the
  server's apply log (:func:`repro.apps.kvstore.check_kv_history`),
- ``cas`` — lock-site mutual exclusion (subsumed by ``history`` for the
  CAS records, plus grant/release accounting),
- ``freshness`` — one-sided READs issued *after* a migration observe at
  least the version applied before it (the moved table is live),
- ``qos`` — each shaped tenant's reserved egress bytes stay within its
  token bucket's admission bound over the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["WorkloadHarness", "run_contract", "CONTRACT_CHECKS",
           "perftest_harness", "hadoop_harness"]

#: capability names, in check order
CONTRACT_CHECKS = ("completion", "accounting", "delivery", "history",
                   "cas", "freshness", "qos")


@dataclass
class WorkloadHarness:
    """One finished workload run, packaged for conformance checking."""

    name: str
    capabilities: frozenset
    #: objects with ``stats`` (clean/order/content/status) and
    #: ``connections`` (outstanding/next_seq/completed/expect_send_seq)
    endpoints: tuple = ()
    #: (sender, receiver) pairs for delivery conservation
    pairs: tuple = ()
    #: KV pieces (``history``/``cas``/``freshness`` capabilities)
    kv_clients: tuple = ()
    kv_server: object = None
    #: ``freshness``: [(key, version_read, version_floor)] gathered by a
    #: post-migration readback sweep — version_floor is the server-side
    #: version applied before the migration finished
    freshness_probes: tuple = ()
    #: ``qos``: [(nic, tenant, elapsed_s, slack_bytes)]
    qos_probes: tuple = ()
    #: ``completion``: [(label, done_units, expected_units)]
    completion_probes: tuple = ()

    def __post_init__(self):
        unknown = set(self.capabilities) - set(CONTRACT_CHECKS)
        if unknown:
            raise ValueError(f"unknown capabilities: {sorted(unknown)}")


def _check_completion(h: WorkloadHarness) -> List[str]:
    out = []
    if not h.completion_probes:
        out.append("completion capability claimed but no probes provided")
    for label, done, expected in h.completion_probes:
        if done != expected:
            out.append(f"{label}: finished {done} of {expected} units")
    return out


def _check_accounting(h: WorkloadHarness) -> List[str]:
    out = []
    for ep in h.endpoints:
        stats = getattr(ep, "stats", None)
        if stats is not None and not stats.clean:
            for err in (stats.order_errors[:3] + stats.content_errors[:3]
                        + stats.status_errors[:3]):
                out.append(f"{ep.name}: {err}")
        if not getattr(ep, "_sender_active", True):
            # Pure receiver: its ring legitimately ends primed with
            # unmatched RECVs; conservation is the ``delivery`` check's
            # job (same convention as the cqe-conservation invariant).
            continue
        for conn in getattr(ep, "connections", ()):
            if conn.outstanding != 0:
                out.append(f"{ep.name} qp#{conn.index}: {conn.outstanding} "
                           f"WRs still outstanding")
            if conn.completed != conn.next_seq:
                out.append(f"{ep.name} qp#{conn.index}: posted {conn.next_seq} "
                           f"but completed {conn.completed}")
            if conn.expect_send_seq != conn.next_seq:
                out.append(f"{ep.name} qp#{conn.index}: completion sequence "
                           f"ended at {conn.expect_send_seq}, expected "
                           f"{conn.next_seq}")
    return out


def _check_delivery(h: WorkloadHarness) -> List[str]:
    out = []
    for sender, receiver in h.pairs:
        if receiver.stats.recv_completed != sender.stats.completed:
            out.append(f"{receiver.name} consumed "
                       f"{receiver.stats.recv_completed} messages but "
                       f"{sender.name} completed {sender.stats.completed}")
    return out


def _check_history(h: WorkloadHarness) -> List[str]:
    from repro.apps.kvstore import check_kv_history

    if h.kv_server is None:
        return ["history capability claimed but no kv_server provided"]
    return check_kv_history(h.kv_clients, h.kv_server)


def _check_cas(h: WorkloadHarness) -> List[str]:
    out = []
    total = 0
    for client in h.kv_clients:
        for cas in client.kv_cas:
            total += 1
            if cas.release_failed:
                out.append(f"client {cas.client}: release CAS on "
                           f"{cas.key!r} found a foreign holder")
    if total == 0:
        out.append("cas capability claimed but no CAS operation was recorded")
    return out


def _check_freshness(h: WorkloadHarness) -> List[str]:
    out = []
    if not h.freshness_probes:
        out.append("freshness capability claimed but no readback probes ran")
    for key, version_read, version_floor in h.freshness_probes:
        if version_read < version_floor:
            out.append(f"stale read after migration: {key!r} returned "
                       f"v{version_read}, floor v{version_floor}")
    return out


def _check_qos(h: WorkloadHarness) -> List[str]:
    out = []
    if not h.qos_probes:
        out.append("qos capability claimed but no tenant probes provided")
    for nic, tenant, elapsed_s, slack_bytes in h.qos_probes:
        qos = getattr(nic, "qos", None)
        if qos is None:
            out.append(f"{nic.name}: qos capability claimed but no QoS installed")
            continue
        state = qos.state(tenant)
        if state is None:
            out.append(f"{nic.name}: tenant {tenant!r} unknown to QoS")
            continue
        allowed = qos.allowed_bytes(tenant, elapsed_s, slack_bytes)
        if allowed is not None and state.tx_bytes > allowed:
            out.append(f"{nic.name}: tenant {tenant!r} reserved "
                       f"{state.tx_bytes} bytes, token bucket admits at most "
                       f"{allowed:.0f} over {elapsed_s:.6f}s")
    return out


_CHECKERS = {
    "completion": _check_completion,
    "accounting": _check_accounting,
    "delivery": _check_delivery,
    "history": _check_history,
    "cas": _check_cas,
    "freshness": _check_freshness,
    "qos": _check_qos,
}


def run_contract(harness: WorkloadHarness) -> List[Tuple[str, str]]:
    """Run every check the harness is capable of; -> [(check, violation)].
    Empty list == the workload conforms."""
    violations: List[Tuple[str, str]] = []
    for check in CONTRACT_CHECKS:
        if check not in harness.capabilities:
            continue
        for message in _CHECKERS[check](harness):
            violations.append((check, message))
    return violations


def perftest_harness(sender, receiver, iters: Optional[int] = None,
                     name: str = "perftest") -> WorkloadHarness:
    """Package one finished perftest run.

    Claims ``accounting`` always, ``completion`` when the intended
    iteration count is known, and ``delivery`` for two-sided (SEND)
    runs, where every sender completion must land in a receiver RECV.
    """
    capabilities = {"accounting"}
    pairs: tuple = ()
    probes: tuple = ()
    if sender.mode == "send":
        capabilities.add("delivery")
        pairs = ((sender, receiver),)
    if iters is not None:
        capabilities.add("completion")
        probes = ((f"{sender.name}: {sender.mode} iterations",
                   sender.stats.completed, iters),)
    return WorkloadHarness(name=name, capabilities=frozenset(capabilities),
                           endpoints=(sender, receiver), pairs=pairs,
                           completion_probes=probes)


def hadoop_harness(outcome, expected_bytes: Optional[int] = None,
                   name: Optional[str] = None) -> WorkloadHarness:
    """Package one Hadoop :class:`ScenarioOutcome`.

    Hadoop tasks report progress through heartbeats rather than a
    per-WR stats surface, so the contract can only hold them to
    ``completion``: the task finished, and (when the workload's payload
    is known, e.g. DFSIO) every payload byte was written.
    """
    probes = [(f"{outcome.task_type}/{outcome.scenario}: finished",
               int(outcome.result.finished), 1)]
    if expected_bytes is not None:
        probes.append((f"{outcome.task_type}/{outcome.scenario}: payload bytes",
                       outcome.result.total_bytes, expected_bytes))
    return WorkloadHarness(
        name=name or f"hadoop-{outcome.task_type}-{outcome.scenario}",
        capabilities=frozenset({"completion"}),
        completion_probes=tuple(probes))
