"""kvstore: a migratable RDMA key-value store (HERD/RDMAbox lineage).

Three verb shapes, chosen to exercise every data path the migration
machinery must preserve:

* **PUT** — two-sided: the client SENDs ``{op, key, value}``; the server
  applies it to a hash table living in a registered MR and SENDs back an
  ack carrying the assigned per-key version.  Real-time linearizability
  of PUTs anchors on this app-level ack.
* **GET** — one-sided: the client RDMA_READs slots of the server's table
  MR directly, walking the same linear-probe sequence the server would,
  with *zero* server CPU involvement.  The client computes remote offsets
  itself from the shared :class:`KvTableLayout` — which is exactly what a
  migration must not break (virtual addresses and rkeys must keep
  resolving to the moved table).
* **LOCK** — CAS atomics on per-bucket lock words (lock striping: the
  lock for key *k* is the lock word of *k*'s home bucket, so a lock op
  never needs probe resolution).

Clients and the server are migration transparent: they only touch the
:class:`~repro.verbs.api.VerbsAPI` surface, carry their logical state in
the Python object, and respawn their loops from ``on_migrated`` /
``on_rollback`` — same contract as :mod:`repro.apps.perftest`.

Every operation is recorded in a history (invoke/response sim-times plus
the observed per-key version); :func:`check_kv_history` replays it
against the server's apply log and reports real-time linearizability
violations.  The ``kv-linearizable`` invariant checker wires this into
the default registry.
"""

from __future__ import annotations

import itertools
import random
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.apps.perftest import IDLE_POLL_S, POLL_BATCH, Connection, PerftestStats
from repro.cluster import Container, Server
from repro.rnic import AccessFlags, Opcode, QPType, RecvWR, SendWR
from repro.sim import Interrupt
from repro.verbs import DirectVerbs
from repro.verbs.api import make_sge

_kv_ids = itertools.count(1)

#: slot header: lock u64 | fingerprint u64 | vlen u32 | version u32 | pad u64
SLOT_HEADER_BYTES = 32
_HEADER = struct.Struct("<QQII8x")

#: fingerprint sentinel values
FP_EMPTY = 0
FP_TOMBSTONE = (1 << 64) - 1

_REQ = struct.Struct("<4sBHHI")  # magic, op, key_len, val_len, op_id
_REP = struct.Struct("<4sIBII")  # magic, op_id, status, version, index
REQ_MAGIC = b"KVQ1"
REP_MAGIC = b"KVR1"
OP_PUT = 1


class KvFullError(Exception):
    """Linear probing exhausted every bucket."""


# ---------------------------------------------------------------------------
# Table layout: pure arithmetic shared by server and clients
# ---------------------------------------------------------------------------


class KvTableLayout:
    """Geometry of the exported hash-table MR.

    Both sides construct this from the same ``(n_buckets, value_cap)``
    pair exchanged out of band; the client's remote-READ offsets are pure
    functions of it, and the property suite pins them against server-side
    truth for arbitrary key sets."""

    def __init__(self, n_buckets: int, value_cap: int):
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        if value_cap <= 0:
            raise ValueError("value_cap must be positive")
        self.n_buckets = n_buckets
        self.value_cap = value_cap
        # 8-byte-aligned slots keep every lock word CAS-able.
        self.slot_bytes = SLOT_HEADER_BYTES + ((value_cap + 7) // 8) * 8

    @property
    def table_bytes(self) -> int:
        return self.n_buckets * self.slot_bytes

    @staticmethod
    def fingerprint(key: str) -> int:
        """64-bit key fingerprint; crc32-based so it is stable across
        interpreter runs (``hash()`` is randomized) and never a sentinel."""
        raw = key.encode()
        fp = (zlib.crc32(b"kv-hi:" + raw) << 32) | zlib.crc32(b"kv-lo:" + raw)
        if fp in (FP_EMPTY, FP_TOMBSTONE):
            fp = 1
        return fp

    def home(self, key: str) -> int:
        return self.fingerprint(key) % self.n_buckets

    def probe_sequence(self, key: str) -> Iterator[int]:
        """Linear-probe bucket order for ``key`` (full table sweep)."""
        start = self.home(key)
        for i in range(self.n_buckets):
            yield (start + i) % self.n_buckets

    def slot_offset(self, index: int) -> int:
        if not 0 <= index < self.n_buckets:
            raise IndexError(f"bucket {index} out of range")
        return index * self.slot_bytes

    def lock_offset(self, key: str) -> int:
        """Offset of the lock word guarding ``key`` (lock striping over
        home buckets: independent of where the value actually landed)."""
        return self.slot_offset(self.home(key))

    def read_plan(self, key: str) -> List[Tuple[int, int, int]]:
        """The client's remote-READ schedule for a GET: ``(bucket, offset,
        length)`` per probe, in order.  The client stops at the first
        fingerprint hit or FP_EMPTY slot."""
        return [(i, self.slot_offset(i), self.slot_bytes)
                for i in self.probe_sequence(key)]

    def pack_slot(self, lock: int, fp: int, vlen: int, version: int) -> bytes:
        return _HEADER.pack(lock, fp, vlen, version)

    def parse_slot(self, raw: bytes) -> Tuple[int, int, int, int, bytes]:
        """-> (lock, fingerprint, vlen, version, value_bytes)"""
        lock, fp, vlen, version = _HEADER.unpack_from(raw)
        value = raw[SLOT_HEADER_BYTES:SLOT_HEADER_BYTES + vlen]
        return lock, fp, vlen, version, value


class KvTable:
    """Server-side table operations over a flat memory backend.

    The backend is anything with ``read(offset, n) -> bytes`` and
    ``write(offset, data)`` — a plain ``bytearray`` adapter for the
    property tests, the process address space for the live server."""

    def __init__(self, layout: KvTableLayout, mem=None):
        self.layout = layout
        self.mem = mem if mem is not None else BytesBacking(layout.table_bytes)

    # -- probing --------------------------------------------------------------

    def _read_header(self, index: int) -> Tuple[int, int, int, int]:
        raw = self.mem.read(self.layout.slot_offset(index), SLOT_HEADER_BYTES)
        return _HEADER.unpack_from(raw)

    def find(self, key: str) -> Tuple[Optional[int], Optional[int]]:
        """-> (index_holding_key, first_free_index); either may be None.
        Mirrors the client's probe walk exactly — the property suite pins
        this equivalence."""
        fp = self.layout.fingerprint(key)
        first_free = None
        for index in self.layout.probe_sequence(key):
            _lock, slot_fp, _vlen, _version = self._read_header(index)
            if slot_fp == FP_EMPTY:
                if first_free is None:
                    first_free = index
                return None, first_free
            if slot_fp == FP_TOMBSTONE:
                if first_free is None:
                    first_free = index
                continue
            if slot_fp == fp:
                return index, first_free
        return None, first_free

    # -- mutation -------------------------------------------------------------

    def put(self, key: str, value: bytes, version: int) -> int:
        """Insert or overwrite; returns the bucket used."""
        layout = self.layout
        if len(value) > layout.value_cap:
            raise ValueError(f"value length {len(value)} exceeds cap {layout.value_cap}")
        index, first_free = self.find(key)
        if index is None:
            if first_free is None:
                raise KvFullError(f"no bucket for key {key!r}")
            index = first_free
        off = layout.slot_offset(index)
        lock, _fp, _vlen, _version = self._read_header(index)
        self.mem.write(off, layout.pack_slot(lock, layout.fingerprint(key),
                                             len(value), version))
        self.mem.write(off + SLOT_HEADER_BYTES, value)
        return index

    def delete(self, key: str) -> bool:
        index, _ = self.find(key)
        if index is None:
            return False
        off = self.layout.slot_offset(index)
        lock, _fp, _vlen, _version = self._read_header(index)
        self.mem.write(off, self.layout.pack_slot(lock, FP_TOMBSTONE, 0, 0))
        return True

    def get(self, key: str) -> Optional[Tuple[bytes, int]]:
        index, _ = self.find(key)
        if index is None:
            return None
        raw = self.mem.read(self.layout.slot_offset(index), self.layout.slot_bytes)
        _lock, _fp, _vlen, version, value = self.layout.parse_slot(raw)
        return value, version

    def entries(self) -> List[Tuple[str, bytes, int]]:
        """Live (fingerprint-unresolvable) slots — resize support keeps a
        side map of fingerprints to keys, so this yields raw slots."""
        out = []
        for index in range(self.layout.n_buckets):
            _lock, fp, vlen, version = self._read_header(index)
            if fp in (FP_EMPTY, FP_TOMBSTONE):
                continue
            off = self.layout.slot_offset(index)
            value = self.mem.read(off + SLOT_HEADER_BYTES, vlen)
            out.append((fp, value, version))
        return out

    def resize(self, n_buckets: int, keys_by_fp: Dict[int, str]) -> "KvTable":
        """Rehash into a fresh table (tombstones dropped, versions kept).
        ``keys_by_fp`` maps fingerprints back to keys — the server knows
        its keys; the layout alone cannot invert a fingerprint."""
        new = KvTable(KvTableLayout(n_buckets, self.layout.value_cap))
        for fp, value, version in self.entries():
            new.put(keys_by_fp[fp], value, version)
        return new

    def lock_word(self, key: str) -> int:
        raw = self.mem.read(self.layout.lock_offset(key), 8)
        return int.from_bytes(raw, "little")


class BytesBacking:
    """bytearray memory backend (property tests, no simulator needed)."""

    def __init__(self, length: int):
        self.data = bytearray(length)

    def read(self, offset: int, n: int) -> bytes:
        return bytes(self.data[offset:offset + n])

    def write(self, offset: int, data: bytes) -> None:
        self.data[offset:offset + len(data)] = data


class SpaceBacking:
    """Process-address-space backend rooted at the table's base VA."""

    def __init__(self, space, base: int):
        self.space = space
        self.base = base

    def read(self, offset: int, n: int) -> bytes:
        return self.space.read(self.base + offset, n)

    def write(self, offset: int, data: bytes) -> None:
        self.space.write(self.base + offset, data)


def make_value(key: str, version: int, length: int) -> bytes:
    """Deterministic value payload: GETs verify content against the
    version they observed, end to end, without shipping values around."""
    seed = zlib.crc32(f"{key}:{version}".encode())
    pattern = seed.to_bytes(4, "little")
    return (pattern * ((length + 3) // 4))[:length]


# ---------------------------------------------------------------------------
# History records + linearizability check
# ---------------------------------------------------------------------------


@dataclass
class KvOpRecord:
    """One completed client operation, with real-time bounds."""

    op: str  # "put" | "get"
    key: str
    t_invoke: float
    t_respond: float
    version: int  # assigned (put) or observed (get); 0 = miss
    ok: bool = True


@dataclass
class KvCasRecord:
    """One lock acquire attempt (and its paired release)."""

    key: str
    client: int
    acquired: bool
    released: bool = False
    release_failed: bool = False
    t_acquire: float = 0.0
    t_release: float = 0.0


@dataclass
class KvStats(PerftestStats):
    """Perftest-shaped counters (the shared invariant checkers read the
    base fields) plus KV op counts."""

    puts: int = 0
    gets: int = 0
    get_misses: int = 0
    cas_attempts: int = 0
    cas_acquired: int = 0


def check_kv_history(clients, server) -> List[str]:
    """Real-time linearizability of the KV history (atomic register with
    per-key versions).

    Server truth: ``server.kv_applies[key]`` is the apply log
    ``[(version, t_apply), ...]``.  For every client GET, the observed
    version must (a) exist in the log with ``t_apply <= t_respond``, and
    (b) be at least the newest version applied before ``t_invoke`` —
    one-sided READs execute after they are posted, so anything applied
    before the post must be visible.  PUT acks must bracket their apply
    instant.  Violations are returned as strings (empty = linearizable).
    """
    violations: List[str] = []
    applies: Dict[str, Dict[int, float]] = {}
    for key, log in server.kv_applies.items():
        prev = 0
        applies[key] = {}
        for version, t_apply in log:
            if version != prev + 1:
                violations.append(
                    f"server apply log for {key!r}: version {version} follows {prev}")
            prev = version
            applies[key][version] = t_apply

    for client in clients:
        for rec in client.kv_history:
            if not rec.ok:
                continue
            key_applies = applies.get(rec.key, {})
            if rec.op == "put":
                t_apply = key_applies.get(rec.version)
                if t_apply is None:
                    violations.append(
                        f"{client.name}: put({rec.key!r}) acked version "
                        f"{rec.version} never applied by the server")
                elif not (rec.t_invoke <= t_apply <= rec.t_respond):
                    violations.append(
                        f"{client.name}: put({rec.key!r}) v{rec.version} applied at "
                        f"{t_apply:.9f} outside [{rec.t_invoke:.9f}, {rec.t_respond:.9f}]")
                continue
            # GET
            if rec.version != 0:
                t_apply = key_applies.get(rec.version)
                if t_apply is None:
                    violations.append(
                        f"{client.name}: get({rec.key!r}) observed version "
                        f"{rec.version} never applied by the server")
                    continue
                if t_apply > rec.t_respond:
                    violations.append(
                        f"{client.name}: get({rec.key!r}) returned v{rec.version} "
                        f"before it was applied ({t_apply:.9f} > {rec.t_respond:.9f})")
            floor = 0
            for version, t_apply in key_applies.items():
                if t_apply <= rec.t_invoke and version > floor:
                    floor = version
            if rec.version < floor:
                violations.append(
                    f"{client.name}: stale get({rec.key!r}): returned v{rec.version} "
                    f"but v{floor} was applied before the READ was posted "
                    f"(invoke {rec.t_invoke:.9f})")

    # CAS mutual exclusion: a successful acquire whose release CAS found a
    # foreign value means two holders existed; >1 unreleased holder per
    # lock means a double grant.
    holders: Dict[str, List[KvCasRecord]] = {}
    for client in clients:
        for cas in client.kv_cas:
            if cas.release_failed:
                violations.append(
                    f"client {cas.client}: release CAS on {cas.key!r} found a "
                    f"foreign holder — mutual exclusion broken")
            if cas.acquired and not cas.released:
                holders.setdefault(cas.key, []).append(cas)
    for key, open_holds in holders.items():
        if len(open_holds) > 1:
            violations.append(
                f"lock {key!r}: {len(open_holds)} concurrent unreleased holders "
                f"(clients {sorted(c.client for c in open_holds)})")
    return violations


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------


class KvServer:
    """The KV server process: owns the table MR, applies PUTs, acks."""

    def __init__(self, server: Server, name: Optional[str] = None,
                 world=None, container: Optional[Container] = None,
                 n_buckets: int = 128, value_cap: int = 64,
                 msg_size: int = 256, depth: int = 32,
                 tenant: Optional[str] = None):
        self.name = name or f"kvserver{next(_kv_ids)}"
        self.server = server
        self.world = world
        self.layout = KvTableLayout(n_buckets, value_cap)
        self.msg_size = msg_size
        self.depth = depth
        self.tenant = tenant

        self.container = container or server.create_container(f"{self.name}-ct")
        self.process = self.container.add_process(self.name)
        if world is not None:
            self.lib = world.make_lib(self.process, self.container)
        else:
            self.lib = DirectVerbs(self.process, server.rnic)
        self.container.apps.append(self)

        self.pd = None
        self.cq = None
        self.table_mr = None
        self.msg_mr = None
        self.table_addr = 0
        self.msg_addr = 0
        self.table: Optional[KvTable] = None
        self.connections: List[Connection] = []
        self._by_qpn: Dict[int, Connection] = {}
        self.stats = KvStats()
        self.running = False
        self._sender_active = False

        #: per-key apply log [(version, sim_time)] — linearizability truth
        self.kv_applies: Dict[str, List[Tuple[int, float]]] = {}
        self._versions: Dict[str, int] = {}
        self._keys_by_fp: Dict[int, str] = {}

    # -- setup ----------------------------------------------------------------

    def _ring_bytes(self) -> int:
        # per connection: depth recv slots + depth send (reply) slots
        return 2 * self.depth * self.msg_size

    def setup(self, client_budget: int = 1):
        """Generator: PD, CQ, the exported table MR, and the message-ring
        MR sized for ``client_budget`` client QPs."""
        self.pd = yield from self.lib.alloc_pd()
        cq_depth = max(4096, 4 * self.depth * client_budget + 64)
        self.cq = yield from self.lib.create_cq(cq_depth)

        table_vma = self.process.space.mmap(
            max(self.layout.table_bytes, 4096), tag="data", name=f"{self.name}-kvtable")
        self.table_addr = table_vma.start
        self.table = KvTable(self.layout,
                             SpaceBacking(self.process.space, self.table_addr))
        self.table_mr = yield from self.lib.reg_mr(
            self.pd, self.table_addr, max(self.layout.table_bytes, 4096),
            AccessFlags.all_remote())

        ring_len = max(4096, self._ring_bytes() * client_budget)
        ring_vma = self.process.space.mmap(ring_len, tag="data",
                                           name=f"{self.name}-kvring")
        self.msg_addr = ring_vma.start
        self.msg_mr = yield from self.lib.reg_mr(
            self.pd, self.msg_addr, ring_len, AccessFlags.all_remote())
        return self

    def preload(self, keys, value_len: int) -> None:
        """Populate the table before traffic (deterministic warm start)."""
        now = self.server.sim.now
        for key in sorted(keys):
            self._apply_put(key, value_len, now)

    def add_client_qp(self, tenant: Optional[str] = None):
        """Generator: one QP for a new client, RECV ring preposted."""
        qp = yield from self.lib.create_qp(
            self.pd, QPType.RC, self.cq, self.cq, 2 * self.depth + 1,
            2 * self.depth + 1, tenant=tenant if tenant is not None else self.tenant)
        index = len(self.connections)
        conn = Connection(qp=qp, peer_name="", index=index)
        self.connections.append(conn)
        self._by_qpn[qp.qpn] = conn
        return conn

    def prime_recv_ring(self, conn: Connection) -> None:
        """Prepost the RECV ring (QP must be past RESET)."""
        for _ in range(self.depth):
            self._post_ring_recv(conn)

    def _recv_slot_addr(self, conn_index: int, seq: int) -> int:
        return (self.msg_addr + conn_index * self._ring_bytes()
                + (seq % self.depth) * self.msg_size)

    def _reply_slot_addr(self, conn_index: int, seq: int) -> int:
        return (self.msg_addr + conn_index * self._ring_bytes()
                + (self.depth + seq % self.depth) * self.msg_size)

    def _post_ring_recv(self, conn: Connection) -> None:
        # conn.next_seq is reserved for send-queue accounting (the
        # cqe-conservation checker reads it); the RECV ring keeps its own
        # cursor.
        seq = getattr(conn, "_recv_ring_seq", 0)
        conn._recv_ring_seq = seq + 1
        addr = self._recv_slot_addr(conn.index, seq)
        self.lib.post_recv(conn.qp, RecvWR(
            wr_id=seq, sges=[make_sge(self.msg_mr, addr - self.msg_addr,
                                      self.msg_size)]))

    # -- run ------------------------------------------------------------------

    def start(self) -> None:
        self.running = True
        self._sender_active = True
        self.process.attach(self.server.sim.spawn(
            self._server_loop(), name=f"{self.name}:srv"))

    def stop(self) -> None:
        self.running = False

    def _server_loop(self):
        sim = self.server.sim
        try:
            while self.running:
                drained = self._drain_completions()
                cpu_s = self.process.cpu.drain_seconds()
                yield sim.timeout(max(cpu_s, IDLE_POLL_S if not drained else IDLE_POLL_S / 2))
        except Interrupt:
            return

    def _drain_completions(self) -> int:
        drained = 0
        while True:
            wcs = self.lib.poll_cq(self.cq, POLL_BATCH)
            if not wcs:
                return drained
            drained += len(wcs)
            for wc in wcs:
                self._handle_wc(wc)

    def _handle_wc(self, wc) -> None:
        conn = self._by_qpn.get(wc.qp_num)
        if conn is None:
            self.stats.status_errors.append(
                f"{self.name}: completion for unknown QPN {wc.qp_num:#x}")
            return
        if not wc.ok:
            self.stats.status_errors.append(
                f"{self.name} wr {wc.wr_id} on {wc.qp_num:#x}: {wc.status.value}")
            return
        if wc.opcode is Opcode.RECV:
            self._handle_request(conn, wc)
            return
        # reply SEND completion: strict order per QP
        if wc.wr_id != conn.expect_send_seq:
            self.stats.order_errors.append(
                f"{self.name} qp {wc.qp_num:#x}: expected reply seq "
                f"{conn.expect_send_seq}, got {wc.wr_id}")
            conn.expect_send_seq = wc.wr_id + 1
        else:
            conn.expect_send_seq += 1
        conn.completed += 1
        conn.outstanding -= 1
        self.stats.completed += 1
        self.stats.bytes_completed += wc.byte_len or self.msg_size

    def _apply_put(self, key: str, val_len: int, now: float) -> Tuple[int, int, bool]:
        """-> (version, bucket, ok).  Versions are per-key monotonic even
        across delete/reinsert, so the apply log never repeats.

        The stored bytes are ``make_value(key, version, val_len)`` — the
        version is assigned here, so the value convention must also be
        applied here; clients verify GET payloads against the version
        they observe, end to end."""
        version = self._versions.get(key, 0) + 1
        value = make_value(key, version, val_len)
        try:
            bucket = self.table.put(key, value, version)
        except KvFullError:
            return 0, 0, False
        self._versions[key] = version
        self._keys_by_fp[self.layout.fingerprint(key)] = key
        self.kv_applies.setdefault(key, []).append((version, now))
        return version, bucket, True

    def _handle_request(self, conn: Connection, wc) -> None:
        conn.recv_completed += 1
        self.stats.recv_completed += 1
        if wc.wr_id != conn.expect_recv_seq:
            self.stats.order_errors.append(
                f"{self.name} qp {wc.qp_num:#x}: expected request seq "
                f"{conn.expect_recv_seq}, got {wc.wr_id}")
            conn.expect_recv_seq = wc.wr_id + 1
        else:
            conn.expect_recv_seq += 1
        addr = self._recv_slot_addr(conn.index, wc.wr_id)
        raw = self.process.space.read(addr, min(wc.byte_len or self.msg_size,
                                                self.msg_size))
        try:
            magic, op, key_len, val_len, op_id = _REQ.unpack_from(raw)
            key = raw[_REQ.size:_REQ.size + key_len].decode()
            value = raw[_REQ.size + key_len:_REQ.size + key_len + val_len]
        except (struct.error, UnicodeDecodeError):
            self.stats.content_errors.append(
                f"{self.name}: malformed request on qp {wc.qp_num:#x}")
            self._post_ring_recv(conn)
            return
        if magic != REQ_MAGIC or op != OP_PUT:
            self.stats.content_errors.append(
                f"{self.name}: bad magic/op {magic!r}/{op} on qp {wc.qp_num:#x}")
            self._post_ring_recv(conn)
            return
        del value  # the request's value bytes model wire cost only
        version, bucket, ok = self._apply_put(key, val_len, self.server.sim.now)
        self.stats.puts += 1
        reply_addr = self._reply_slot_addr(conn.index, wc.wr_id)
        self.process.space.write(
            reply_addr, _REP.pack(REP_MAGIC, op_id, 1 if ok else 0, version, bucket))
        self.lib.post_send(conn.qp, SendWR(
            wr_id=conn.next_seq, opcode=Opcode.SEND,
            sges=[make_sge(self.msg_mr, reply_addr - self.msg_addr, _REP.size)]))
        conn.next_seq += 1
        conn.outstanding += 1
        # keep the RECV ring primed
        self._post_ring_recv(conn)

    # -- migration transparency ----------------------------------------------

    def on_migrated(self, session, restored_container: Container) -> None:
        self.container = restored_container
        self.process = session.processes[self.process.pid]
        self.server = restored_container.server
        # The table VMA was restored at its original VA: re-root the
        # backend on the restored address space.
        self.table.mem = SpaceBacking(self.process.space, self.table_addr)
        if self.running:
            self.process.attach(self.server.sim.spawn(
                self._server_loop(), name=f"{self.name}:srv"))

    def on_rollback(self, container: Container) -> None:
        self.table.mem = SpaceBacking(self.process.space, self.table_addr)
        if self.running:
            self.process.attach(self.server.sim.spawn(
                self._server_loop(), name=f"{self.name}:srv"))


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


@dataclass
class _KvOp:
    op_id: int
    kind: str  # "put" | "get" | "cas"
    key: str
    slot: int
    t_invoke: float
    # get state
    plan_pos: int = 0
    # cas state
    phase: str = ""  # "acquire" | "release"
    acquired: bool = False
    t_acquire: float = 0.0
    put_value: bytes = b""


class KvClient:
    """Closed-loop KV client: ``depth`` operations in flight, op mix and
    key choice drawn from a seeded RNG (deterministic across runs)."""

    def __init__(self, server: Server, kv: KvServer, name: Optional[str] = None,
                 world=None, container: Optional[Container] = None,
                 keyspace: Optional[List[str]] = None, value_len: int = 32,
                 depth: int = 4, msg_size: int = 256,
                 mix: Tuple[float, float, float] = (0.25, 0.65, 0.10),
                 seed: int = 0, tenant: Optional[str] = None,
                 pace_s: float = 0.0):
        self.name = name or f"kvclient{next(_kv_ids)}"
        self.server = server
        self.kv = kv
        self.world = world
        self.layout = kv.layout
        self.keyspace = keyspace or [f"key{i:04d}" for i in range(32)]
        self.value_len = min(value_len, kv.layout.value_cap)
        self.depth = depth
        self.msg_size = msg_size
        self.mix = mix
        self.tenant = tenant
        self.pace_s = pace_s
        self.client_id = next(_kv_ids) << 8  # nonzero CAS holder token
        self.rng = random.Random(f"kvclient:{seed}:{self.name}")

        self.container = container or server.create_container(f"{self.name}-ct")
        self.process = self.container.add_process(self.name)
        if world is not None:
            self.lib = world.make_lib(self.process, self.container)
        else:
            self.lib = DirectVerbs(self.process, server.rnic)
        self.container.apps.append(self)

        self.pd = None
        self.cq = None
        self.mr = None
        self.buf_addr = 0
        self.conn: Optional[Connection] = None
        self.connections: List[Connection] = []
        self.stats = KvStats()
        self.running = False
        self._sender_active = False
        self._iters_left: Optional[int] = None

        self.remote_table_addr = 0
        self.remote_table_rkey = 0
        self.remote_msg_rkey = 0

        self._ops: Dict[int, _KvOp] = {}
        self._wr_ops: Dict[int, int] = {}  # send-queue wr_id -> op_id
        self._op_ids = itertools.count(1)
        self._free_slots: List[int] = []
        self._recv_seq = 0

        self.kv_history: List[KvOpRecord] = []
        self.kv_cas: List[KvCasRecord] = []
        self.get_latencies: List[float] = []

    # -- buffer geometry ------------------------------------------------------
    # [depth send slots][depth recv slots][depth read slots][depth atomic slots]

    def _send_off(self, slot: int) -> int:
        return slot * self.msg_size

    def _recv_off(self, slot: int) -> int:
        return (self.depth + slot) * self.msg_size

    def _read_off(self, slot: int) -> int:
        return 2 * self.depth * self.msg_size + slot * self.layout.slot_bytes

    def _atomic_off(self, slot: int) -> int:
        return (2 * self.depth * self.msg_size
                + self.depth * self.layout.slot_bytes + slot * 8)

    def _buf_bytes(self) -> int:
        return (2 * self.depth * self.msg_size
                + self.depth * self.layout.slot_bytes + self.depth * 8)

    def setup(self):
        """Generator: PD, CQ, one MR covering all rings, one QP."""
        self.pd = yield from self.lib.alloc_pd()
        self.cq = yield from self.lib.create_cq(max(4096, 8 * self.depth + 64))
        buf_len = max(4096, self._buf_bytes())
        vma = self.process.space.mmap(buf_len, tag="data", name=f"{self.name}-buf")
        self.buf_addr = vma.start
        self.mr = yield from self.lib.reg_mr(
            self.pd, self.buf_addr, buf_len, AccessFlags.all_remote())
        qp = yield from self.lib.create_qp(
            self.pd, QPType.RC, self.cq, self.cq, 4 * self.depth + 1,
            self.depth + 1, tenant=self.tenant)
        self.conn = Connection(qp=qp, peer_name=self.kv.name)
        self.connections = [self.conn]
        self._free_slots = list(range(self.depth))
        return self

    # -- traffic --------------------------------------------------------------

    def start(self, iters: Optional[int] = None) -> None:
        self.running = True
        self._iters_left = iters
        self._sender_active = True
        self.process.attach(self.server.sim.spawn(
            self._client_loop(), name=f"{self.name}:ops"))

    def stop(self) -> None:
        self.running = False

    def _client_loop(self):
        sim = self.server.sim
        try:
            while self.running:
                drained = self._drain_completions()
                self._issue_ops()
                if self._iters_left == 0 and not self._ops:
                    self.running = False
                    break
                cpu_s = self.process.cpu.drain_seconds()
                floor = self.pace_s if self.pace_s else (
                    IDLE_POLL_S / 2 if drained else IDLE_POLL_S)
                yield sim.timeout(max(cpu_s, floor))
        except Interrupt:
            return

    def _issue_ops(self) -> None:
        while len(self._ops) < self.depth and self._free_slots:
            if self._iters_left is not None:
                if self._iters_left <= 0:
                    return
                self._iters_left -= 1
            self._issue_one()
            if self.pace_s:
                return  # paced: at most one new op per tick

    def _issue_one(self) -> None:
        r = self.rng.random()
        put_w, get_w, _cas_w = self.mix
        key = self.rng.choice(self.keyspace)
        slot = self._free_slots.pop()
        op = _KvOp(op_id=next(self._op_ids), kind="", key=key, slot=slot,
                   t_invoke=self.server.sim.now)
        self._ops[op.op_id] = op
        if r < put_w:
            op.kind = "put"
            self._issue_put(op)
        elif r < put_w + get_w:
            op.kind = "get"
            self._issue_get_probe(op)
        else:
            op.kind = "cas"
            op.phase = "acquire"
            self._issue_cas(op, expect=0, swap=self.client_id)
            self.stats.cas_attempts += 1

    def _post(self, wr: SendWR, op: Optional[_KvOp] = None) -> None:
        conn = self.conn
        wr.wr_id = conn.next_seq
        if op is not None:
            self._wr_ops[wr.wr_id] = op.op_id
        self.lib.post_send(conn.qp, wr)
        conn.next_seq += 1
        conn.outstanding += 1

    def _issue_put(self, op: _KvOp) -> None:
        # The client cannot know which version the server will assign, so
        # the wire carries a zero-filled value of the requested length;
        # the server stores make_value(key, assigned_version, len) — the
        # convention GET payload verification checks against.
        key_raw = op.key.encode()
        payload = _REQ.pack(REQ_MAGIC, OP_PUT, len(key_raw), self.value_len,
                            op.op_id) + key_raw + bytes(self.value_len)
        addr = self.buf_addr + self._send_off(op.slot)
        self.process.space.write(addr, payload)
        self._post(SendWR(
            wr_id=0, opcode=Opcode.SEND,
            sges=[make_sge(self.mr, addr - self.buf_addr, len(payload))]))

    def _issue_get_probe(self, op: _KvOp) -> None:
        plan = self.layout.read_plan(op.key)
        bucket, offset, length = plan[op.plan_pos]
        self._post(SendWR(
            wr_id=0, opcode=Opcode.RDMA_READ,
            sges=[make_sge(self.mr, self._read_off(op.slot), length)],
            remote_addr=self.remote_table_addr + offset,
            rkey=self.remote_table_rkey), op)

    def _issue_cas(self, op: _KvOp, expect: int, swap: int) -> None:
        self._post(SendWR(
            wr_id=0, opcode=Opcode.ATOMIC_CMP_AND_SWP,
            sges=[make_sge(self.mr, self._atomic_off(op.slot), 8)],
            remote_addr=self.remote_table_addr + self.layout.lock_offset(op.key),
            rkey=self.remote_table_rkey,
            compare_add=expect, swap=swap), op)

    def _post_reply_recv(self) -> None:
        seq = self._recv_seq
        self._recv_seq += 1
        off = self._recv_off(seq % self.depth)
        self.lib.post_recv(self.conn.qp, RecvWR(
            wr_id=seq, sges=[make_sge(self.mr, off, self.msg_size)]))

    def prime_recv_ring(self) -> None:
        for _ in range(self.depth):
            self._post_reply_recv()

    # -- completion handling --------------------------------------------------

    def _drain_completions(self) -> int:
        drained = 0
        while True:
            wcs = self.lib.poll_cq(self.cq, POLL_BATCH)
            if not wcs:
                return drained
            drained += len(wcs)
            for wc in wcs:
                self._handle_wc(wc)

    def _handle_wc(self, wc) -> None:
        conn = self.conn
        if conn is None or wc.qp_num != conn.qp.qpn:
            self.stats.status_errors.append(
                f"{self.name}: completion for unknown QPN {wc.qp_num:#x}")
            return
        if not wc.ok:
            self.stats.status_errors.append(
                f"{self.name} wr {wc.wr_id} on {wc.qp_num:#x}: {wc.status.value}")
            return
        if wc.opcode is Opcode.RECV:
            self._handle_reply(wc)
            return
        # send-queue completion: order check, then op continuation
        if wc.wr_id != conn.expect_send_seq:
            self.stats.order_errors.append(
                f"{self.name} qp {wc.qp_num:#x}: expected send seq "
                f"{conn.expect_send_seq}, got {wc.wr_id}")
            conn.expect_send_seq = wc.wr_id + 1
        else:
            conn.expect_send_seq += 1
        conn.completed += 1
        conn.outstanding -= 1
        self.stats.completed += 1
        self.stats.bytes_completed += wc.byte_len or 0
        op_id = self._wr_ops.pop(wc.wr_id, None)
        if op_id is None:
            return  # PUT request SEND: op completes on the reply RECV
        op = self._ops.get(op_id)
        if op is None:
            return
        if op.kind == "get":
            self._continue_get(op)
        elif op.kind == "cas":
            self._continue_cas(op)

    def _continue_get(self, op: _KvOp) -> None:
        raw = self.process.space.read(self.buf_addr + self._read_off(op.slot),
                                      self.layout.slot_bytes)
        _lock, fp, _vlen, version, value = self.layout.parse_slot(raw)
        key_fp = self.layout.fingerprint(op.key)
        now = self.server.sim.now
        if fp == key_fp:
            expected = make_value(op.key, version, len(value))
            if value != expected:
                self.stats.content_errors.append(
                    f"{self.name}: get({op.key!r}) v{version} payload mismatch")
            self._finish_get(op, version, now)
        elif fp == FP_EMPTY:
            self.stats.get_misses += 1
            self._finish_get(op, 0, now)
        else:
            op.plan_pos += 1
            if op.plan_pos >= self.layout.n_buckets:
                self.stats.get_misses += 1
                self._finish_get(op, 0, now)
            else:
                self._issue_get_probe(op)

    def _finish_get(self, op: _KvOp, version: int, now: float) -> None:
        self.stats.gets += 1
        self.get_latencies.append(now - op.t_invoke)
        self.kv_history.append(KvOpRecord(
            op="get", key=op.key, t_invoke=op.t_invoke, t_respond=now,
            version=version))
        self._retire(op)

    def _continue_cas(self, op: _KvOp) -> None:
        raw = self.process.space.read(self.buf_addr + self._atomic_off(op.slot), 8)
        observed = int.from_bytes(raw, "little")
        now = self.server.sim.now
        if op.phase == "acquire":
            if observed == 0:
                op.acquired = True
                op.t_acquire = now
                self.stats.cas_acquired += 1
                # hold was granted: release immediately (the window between
                # the two CAS executions is the critical section)
                op.phase = "release"
                self._issue_cas(op, expect=self.client_id, swap=0)
                return
            # lost the race: record the failed attempt and retire
            self.kv_cas.append(KvCasRecord(
                key=op.key, client=self.client_id, acquired=False,
                t_acquire=now))
            self._retire(op)
            return
        # release phase
        rec = KvCasRecord(key=op.key, client=self.client_id, acquired=True,
                          t_acquire=op.t_acquire, t_release=now)
        if observed == self.client_id:
            rec.released = True
        else:
            rec.release_failed = True
        self.kv_cas.append(rec)
        self._retire(op)

    def _handle_reply(self, wc) -> None:
        conn = self.conn
        conn.recv_completed += 1
        self.stats.recv_completed += 1
        if wc.wr_id != conn.expect_recv_seq:
            self.stats.order_errors.append(
                f"{self.name} qp {wc.qp_num:#x}: expected recv seq "
                f"{conn.expect_recv_seq}, got {wc.wr_id}")
            conn.expect_recv_seq = wc.wr_id + 1
        else:
            conn.expect_recv_seq += 1
        off = self._recv_off(wc.wr_id % self.depth)
        raw = self.process.space.read(self.buf_addr + off, _REP.size)
        self._post_reply_recv()
        try:
            magic, op_id, status, version, _bucket = _REP.unpack_from(raw)
        except struct.error:
            self.stats.content_errors.append(f"{self.name}: malformed reply")
            return
        if magic != REP_MAGIC:
            self.stats.content_errors.append(
                f"{self.name}: bad reply magic {magic!r}")
            return
        op = self._ops.get(op_id)
        if op is None or op.kind != "put":
            self.stats.order_errors.append(
                f"{self.name}: reply for unknown op {op_id}")
            return
        now = self.server.sim.now
        self.stats.puts += 1
        self.kv_history.append(KvOpRecord(
            op="put", key=op.key, t_invoke=op.t_invoke, t_respond=now,
            version=version, ok=bool(status)))
        self._retire(op)

    def _retire(self, op: _KvOp) -> None:
        self._ops.pop(op.op_id, None)
        self._free_slots.append(op.slot)

    # -- synchronous sweeps ---------------------------------------------------

    def readback(self, key: str):
        """Generator: one synchronous GET (drives its own polling).  Used
        by the freshness-after-migration contract check; traffic loops
        must be stopped."""
        sim = self.server.sim
        done: List[Tuple[int, bytes]] = []
        for bucket, offset, length in self.layout.read_plan(key):
            wr_id = self.conn.next_seq
            self._post(SendWR(
                wr_id=0, opcode=Opcode.RDMA_READ,
                sges=[make_sge(self.mr, self._read_off(0), length)],
                remote_addr=self.remote_table_addr + offset,
                rkey=self.remote_table_rkey))
            while self.conn.expect_send_seq <= wr_id:
                self._drain_completions()
                yield sim.timeout(self.process.cpu.drain_seconds() or IDLE_POLL_S / 4)
            raw = self.process.space.read(
                self.buf_addr + self._read_off(0), self.layout.slot_bytes)
            _lock, fp, _vlen, version, value = self.layout.parse_slot(raw)
            if fp == self.layout.fingerprint(key):
                return value, version
            if fp == FP_EMPTY:
                return None
        return None

    # -- migration transparency ----------------------------------------------

    def on_migrated(self, session, restored_container: Container) -> None:
        self.container = restored_container
        self.process = session.processes[self.process.pid]
        self.server = restored_container.server
        if self.running:
            self.process.attach(self.server.sim.spawn(
                self._client_loop(), name=f"{self.name}:ops"))

    def on_rollback(self, container: Container) -> None:
        if self.running:
            self.process.attach(self.server.sim.spawn(
                self._client_loop(), name=f"{self.name}:ops"))


# ---------------------------------------------------------------------------
# Wiring
# ---------------------------------------------------------------------------


def connect_kv(kv: KvServer, client: KvClient):
    """Generator: out-of-band exchange + QP connection for one client.

    The client learns the table's (virtual) base address, rkey and
    layout; both sides bring their QPs to RTS."""
    sim = kv.server.sim
    server_conn = yield from kv.add_client_qp(tenant=client.tenant)
    yield sim.timeout(50e-6)  # OOB exchange (sockets in real deployments)
    server_conn.peer_name = client.name
    client.remote_table_addr = kv.table_addr
    client.remote_table_rkey = kv.table_mr.rkey
    yield from kv.lib.connect(server_conn.qp, client.server.name, client.conn.qp.qpn)
    yield from client.lib.connect(client.conn.qp, kv.server.name, server_conn.qp.qpn)
    kv.prime_recv_ring(server_conn)
    client.prime_recv_ring()
    return server_conn
