"""Hadoop maintenance scenarios (Figure 6).

Runs TestDFSIO or EstimatePI under three operator strategies when the
slave's server must be taken down mid-job:

- ``baseline`` — nothing happens; the job runs to completion,
- ``migrrdma`` — the slave container is live-migrated with MigrRDMA,
- ``failover`` — the slave dies; Hadoop's heartbeat-timeout failover
  starts a backup container and replays the task log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import cluster
from repro.apps.hadoop import (
    DfsioTask,
    EstimatePiTask,
    FailoverManager,
    HadoopCluster,
    TaskResult,
)
from repro.config import Config
from repro.core import LiveMigration, MigrRdmaWorld

SCENARIOS = ("baseline", "migrrdma", "failover")


@dataclass
class ScenarioOutcome:
    """One (task, strategy) cell of Figure 6."""

    scenario: str
    task_type: str
    result: TaskResult
    migration_report: Optional[object] = None
    failover_detected_at: Optional[float] = None

    @property
    def jct_s(self) -> float:
        return self.result.jct_s

    def tput_gbps(self) -> float:
        return self.result.aggregate_tput_gbps()


def run_scenario(task_type: str, scenario: str, config: Optional[Config] = None,
                 event_after_s: float = 3.0, limit_s: float = 1200.0,
                 chaos_plan=None) -> ScenarioOutcome:
    """Build a fresh Hadoop cluster and run one (task, scenario) cell.

    ``chaos_plan`` (a :class:`repro.chaos.FaultPlan`) installs fault
    injection on the freshly-built testbed and is armed on the migration;
    with a plan present, background process failures are left for the
    chaos invariant checkers instead of raising here.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}")
    if task_type not in ("dfsio", "estimatepi"):
        raise ValueError(f"unknown task type {task_type!r}")

    tb = cluster.build(config=config, num_partners=2)
    world = MigrRdmaWorld(tb)
    if chaos_plan is not None:
        chaos_plan.install(tb)
    hadoop = HadoopCluster(tb, world)
    cfg = tb.config.hadoop
    outcome = ScenarioOutcome(scenario=scenario, task_type=task_type,
                              result=TaskResult())

    def flow():
        yield from hadoop.setup()
        if task_type == "dfsio":
            task = DfsioTask(hadoop, cfg.dfsio_nfiles, cfg.dfsio_file_size_bytes)
        else:
            task = EstimatePiTask(hadoop, cfg.estimatepi_samples)
        hadoop.submit(task)

        if scenario == "migrrdma":
            yield tb.sim.timeout(event_after_s)
            migration = LiveMigration(world, hadoop.slave.container, tb.destination)
            if chaos_plan is not None:
                chaos_plan.arm(migration)
            outcome.migration_report = yield from migration.run()
        elif scenario == "failover":
            monitor = FailoverManager(hadoop, tb.destination)
            tb.sim.spawn(monitor.monitor_and_recover(), name="hdp-failover-monitor")
            yield tb.sim.timeout(event_after_s)
            monitor.kill_slave()
            while not monitor.failed_over and not hadoop.task.result.finished:
                yield tb.sim.timeout(0.1)
            outcome.failover_detected_at = monitor.detected_at

        result = yield from hadoop.wait_task()
        outcome.result = hadoop.task.result
        return result

    tb.run(flow(), limit=limit_s)
    if tb.sim.failed_processes and chaos_plan is None:
        raise RuntimeError(f"background failures: {tb.sim.failed_processes[:3]}")
    return outcome


def fast_test_config() -> Config:
    """A scaled-down Hadoop configuration for the test suite."""
    config = Config()
    hadoop = config.hadoop
    hadoop.dfsio_file_size_bytes = 128 * 1024 * 1024
    hadoop.dfsio_nfiles = 2
    hadoop.estimatepi_samples = 20_000_000
    hadoop.heartbeat_interval_s = 0.2
    hadoop.failover_detect_timeout_s = 1.0
    hadoop.task_log_replay_s = 0.5
    hadoop.backup_container_start_s = 0.3
    hadoop.progress_report_interval_s = 0.1
    hadoop.slave_heap_bytes = 192 * 1024 * 1024
    hadoop.slave_heap_dirty_bps = 32 * 1024 * 1024
    return config
