"""perftest: the microbenchmark workload (§5.1).

A faithful analogue of linux-rdma/perftest's bandwidth/latency tests with
the paper's three extensions:

1. **correctness checking** — the WR ID of every request carries a per-QP
   sequence number; completions are checked for order, duplication and
   loss, and (optionally) payload contents are verified end to end (§5.3),
2. **one-to-many** — one endpoint with *n* QPs, each connected to a
   different partner endpoint (§5.4, Figure 4c),
3. **cycle sampling** — per-invocation CPU cycles of send/recv/write/read
   (§5.5.1, Table 4).

Endpoints are *migration transparent*: they only touch the
:class:`~repro.verbs.api.VerbsAPI` surface, so the same code runs over
the plain library or the MigrRDMA guest lib, before and after migration —
mirroring how the paper runs the unmodified perftest binary.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster import Container, Server
from repro.rnic import AccessFlags, Opcode, QPType, RecvWR, SendWR
from repro.sim import Interrupt
from repro.verbs import DirectVerbs
from repro.verbs.api import make_sge

_endpoint_ids = itertools.count(1)

#: completions drained per poll call (perftest uses batched polling)
POLL_BATCH = 16

#: idle backoff when the wire is quiet (busy-poll granularity)
IDLE_POLL_S = 1e-6

_MODE_OPCODE = {
    "write": Opcode.RDMA_WRITE,
    "send": Opcode.SEND,
    "read": Opcode.RDMA_READ,
    "fadd": Opcode.ATOMIC_FETCH_AND_ADD,
}


@dataclass
class Connection:
    """One QP (plus the peer's buffer coordinates) of an endpoint."""

    qp: object
    peer_name: str
    index: int = 0
    remote_addr: int = 0
    remote_rkey: int = 0
    #: optional round-robin one-sided targets: [(addr, rkey), ...] — used to
    #: exercise workloads that spread operations over many MRs
    remote_targets: list = field(default_factory=list)
    outstanding: int = 0
    next_seq: int = 0
    expect_send_seq: int = 0
    expect_recv_seq: int = 0
    completed: int = 0
    recv_completed: int = 0


@dataclass
class PerftestStats:
    """Counters plus the §5.3 correctness violations (must stay empty)."""

    completed: int = 0
    bytes_completed: int = 0
    recv_completed: int = 0
    order_errors: List[str] = field(default_factory=list)
    content_errors: List[str] = field(default_factory=list)
    status_errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.order_errors or self.content_errors or self.status_errors)


class PerftestEndpoint:
    """One perftest process inside a container."""

    def __init__(self, server: Server, name: Optional[str] = None,
                 world=None, container: Optional[Container] = None,
                 msg_size: int = 65536, depth: int = 64,
                 mode: str = "write", verify_content: bool = False,
                 sample_cycles: bool = False, pace_s: float = 0.0,
                 tenant: Optional[str] = None):
        if mode not in _MODE_OPCODE:
            raise ValueError(f"unknown perftest mode {mode!r}")
        if pace_s < 0:
            raise ValueError(f"pace_s must be >= 0, got {pace_s}")
        self.name = name or f"perftest{next(_endpoint_ids)}"
        self.server = server
        self.world = world
        self.msg_size = msg_size
        self.depth = depth
        self.mode = mode
        self.opcode = _MODE_OPCODE[mode]
        self.verify_content = verify_content
        #: posting-tick interval for rate-limited senders.  0.0 (default)
        #: keeps perftest's native behaviour — depth WRs outstanding,
        #: refilled per completion at line rate.  A fleet of hundreds of
        #: endpoints cannot all run at line rate (nor would real tenants);
        #: a paced sender posts at most one WR per QP per tick, capping
        #: event rate at ~1/pace_s per connection.
        self.pace_s = pace_s
        #: per-tenant QoS identity carried on every QP this endpoint creates
        self.tenant = tenant

        self.container = container or server.create_container(f"{self.name}-ct")
        self.process = self.container.add_process(self.name, record_samples=sample_cycles)
        if world is not None:
            self.lib = world.make_lib(self.process, self.container)
        else:
            self.lib = DirectVerbs(self.process, server.rnic)
        self.container.apps.append(self)

        self.pd = None
        self.cq = None
        self.mr = None
        self.buf_addr = 0
        self.connections: List[Connection] = []
        self._by_qpn: Dict[int, Connection] = {}
        self.stats = PerftestStats()
        self.running = False
        self._sender_active = False
        self._receiver_active = False

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def buffer_bytes_per_qp(self) -> int:
        """Slot-ring bytes each QP needs (depth slots of msg_size)."""
        return self.depth * self.msg_size

    def setup(self, qp_budget: int = 1):
        """Generator: PD, one shared CQ, one buffer+MR sized for
        ``qp_budget`` QPs (slot ring of ``depth`` messages per QP)."""
        sim = self.server.sim
        self.pd = yield from self.lib.alloc_pd()
        cq_depth = max(4096, 2 * self.depth * qp_budget + 64)
        self.cq = yield from self.lib.create_cq(cq_depth)
        buf_len = max(4096, self.buffer_bytes_per_qp() * qp_budget)
        vma = self.process.space.mmap(buf_len, tag="data", name=f"{self.name}-buf")
        self.buf_addr = vma.start
        self.mr = yield from self.lib.reg_mr(
            self.pd, self.buf_addr, buf_len, AccessFlags.all_remote())
        return self

    def add_qp(self):
        """Generator: create one more QP on the shared CQ."""
        qp = yield from self.lib.create_qp(
            self.pd, QPType.RC, self.cq, self.cq, self.depth + 1, self.depth + 1,
            tenant=self.tenant)
        index = len(self.connections)
        conn = Connection(qp=qp, peer_name="", index=index)
        self.connections.append(conn)
        self._by_qpn[qp.qpn] = conn
        return conn

    def register_extra_mrs(self, count: int, size: int = 4096):
        """Generator: register ``count`` additional MRs (own VMAs); returns
        them.  Models applications that expose many small regions."""
        out = []
        for i in range(count):
            vma = self.process.space.mmap(max(size, 4096), tag="data",
                                          name=f"{self.name}-xmr{i}")
            mr = yield from self.lib.reg_mr(self.pd, vma.start, max(size, 4096),
                                            AccessFlags.all_remote())
            out.append(mr)
        return out

    def slot_addr(self, conn_index: int, seq: int) -> int:
        """Buffer slot for message ``seq`` of connection ``conn_index``."""
        return (self.buf_addr + conn_index * self.buffer_bytes_per_qp()
                + (seq % self.depth) * self.msg_size)

    # ------------------------------------------------------------------
    # traffic loops
    # ------------------------------------------------------------------

    def start_as_sender(self, iters: Optional[int] = None) -> None:
        """Spawn the posting loop (bw test, best-effort posting like
        perftest: keep ``depth`` WRs outstanding per QP)."""
        self.running = True
        self._iters_left = iters
        self._sender_active = True
        self.process.attach(self.server.sim.spawn(
            self._sender_loop(), name=f"{self.name}:tx"))

    def start_as_receiver(self) -> None:
        """Prepost RECVs and spawn the draining loop ('send' mode peer;
        one-sided modes need no receiver loop)."""
        self.running = True
        self._iters_left = None
        self._receiver_active = True
        self._prepost_recvs()
        self.process.attach(self.server.sim.spawn(
            self._receiver_loop(), name=f"{self.name}:rx"))

    def stop(self) -> None:
        """Ask the traffic loops to wind down at their next wakeup."""
        self.running = False

    # -- sender -------------------------------------------------------------

    def _build_wr(self, index: int, conn: Connection) -> SendWR:
        seq = conn.next_seq
        addr = self.slot_addr(index, seq)
        if self.verify_content:
            self.process.space.write(addr, seq.to_bytes(8, "little")
                                     + index.to_bytes(4, "little") + b"PERF")
        if self.opcode.is_atomic:
            return SendWR(
                wr_id=seq, opcode=self.opcode,
                sges=[make_sge(self.mr, addr - self.buf_addr, 8)],
                remote_addr=conn.remote_addr, rkey=conn.remote_rkey,
                compare_add=1)
        wr = SendWR(wr_id=seq, opcode=self.opcode,
                    sges=[make_sge(self.mr, addr - self.buf_addr, self.msg_size)])
        if self.opcode.is_one_sided:
            if conn.remote_targets:
                target_addr, target_rkey = conn.remote_targets[
                    seq % len(conn.remote_targets)]
                wr.remote_addr = target_addr
                wr.rkey = target_rkey
            else:
                wr.remote_addr = conn.remote_addr + (seq % self.depth) * self.msg_size
                wr.rkey = conn.remote_rkey
        return wr

    def _refill_conn(self, conn: Connection) -> int:
        posted = 0
        while conn.outstanding < self.depth:
            if self._iters_left is not None:
                if self._iters_left <= 0:
                    return posted
                self._iters_left -= 1
            if self.process.cpu.record_samples:
                self.process.cpu.begin_op_sample(self.mode)
            self.lib.post_send(conn.qp, self._build_wr(conn.index, conn))
            if self.process.cpu.record_samples:
                self.process.cpu.end_op_sample()
            conn.next_seq += 1
            conn.outstanding += 1
            posted += 1
        return posted

    def _refill(self) -> int:
        posted = 0
        for conn in self.connections:
            posted += self._refill_conn(conn)
        return posted

    def _poll_sleep_s(self) -> float:
        """Adaptive busy-poll granularity: roughly half a completion batch.

        Purely a simulation-efficiency knob — the queue depth hides the
        sleep, so throughput is unaffected while the event count drops by
        an order of magnitude for large messages.
        """
        rate = self.server.node.port.rate_bps
        batch = min(self.depth, POLL_BATCH) / 2
        return min(max(batch * self.msg_size * 8 / rate, 0.5e-6), 50e-6)

    def _sender_loop(self):
        if self.pace_s:
            yield from self._paced_sender_loop()
            return
        sim = self.server.sim
        poll_sleep = self._poll_sleep_s()
        self._refill()  # initial window; afterwards refill is per-completion
        try:
            while self.running:
                drained = self._drain_completions()
                cpu_s = self.process.cpu.drain_seconds()
                if drained:
                    yield sim.timeout(max(cpu_s, poll_sleep))
                else:
                    if self._iters_left == 0 and not any(
                            c.outstanding for c in self.connections):
                        self.running = False
                        break
                    self._refill()  # e.g. after resuming from suspension
                    yield sim.timeout(max(cpu_s, poll_sleep, IDLE_POLL_S))
        except Interrupt:
            return

    def _paced_sender_loop(self):
        """Rate-limited posting: at most one WR per QP per ``pace_s`` tick,
        still bounded by ``depth`` outstanding.  Suspension/migration work
        unchanged — posts during suspension are buffered by the guest lib
        and replayed, and ``on_migrated``/``on_rollback`` respawn the loop."""
        sim = self.server.sim
        try:
            while self.running:
                self._drain_completions()
                for conn in self.connections:
                    if conn.outstanding >= self.depth:
                        continue
                    if self._iters_left is not None:
                        if self._iters_left <= 0:
                            continue
                        self._iters_left -= 1
                    if self.process.cpu.record_samples:
                        self.process.cpu.begin_op_sample(self.mode)
                    self.lib.post_send(conn.qp, self._build_wr(conn.index, conn))
                    if self.process.cpu.record_samples:
                        self.process.cpu.end_op_sample()
                    conn.next_seq += 1
                    conn.outstanding += 1
                if self._iters_left == 0 and not any(
                        c.outstanding for c in self.connections):
                    self.running = False
                    break
                cpu_s = self.process.cpu.drain_seconds()
                yield sim.timeout(max(cpu_s, self.pace_s))
        except Interrupt:
            return

    def _drain_completions(self) -> int:
        drained = 0
        while True:
            wcs = self.lib.poll_cq(self.cq, POLL_BATCH)
            if not wcs:
                return drained
            drained += len(wcs)
            for wc in wcs:
                self._handle_wc(wc)

    def _handle_wc(self, wc) -> None:
        conn = self._by_qpn.get(wc.qp_num)
        if conn is None:
            self.stats.status_errors.append(f"completion for unknown QPN {wc.qp_num:#x}")
            return
        if not wc.ok:
            self.stats.status_errors.append(
                f"wr {wc.wr_id} on {wc.qp_num:#x}: {wc.status.value}")
            return
        if wc.opcode is Opcode.RECV:
            self._handle_recv_wc(conn, wc)
            return
        # §5.3: WR IDs must come back in order, without duplication or loss.
        if wc.wr_id != conn.expect_send_seq:
            self.stats.order_errors.append(
                f"{self.name} qp {wc.qp_num:#x}: expected send seq "
                f"{conn.expect_send_seq}, got {wc.wr_id}")
            conn.expect_send_seq = wc.wr_id + 1
        else:
            conn.expect_send_seq += 1
        conn.completed += 1
        conn.outstanding -= 1
        self.stats.completed += 1
        self.stats.bytes_completed += wc.byte_len or self.msg_size
        if self.running and self._sender_active and not self.pace_s:
            self._refill_conn(conn)

    # -- receiver --------------------------------------------------------------

    def _prepost_recvs(self) -> None:
        for conn in self.connections:
            self._repost_recv(conn)

    def _repost_recv(self, conn: Connection) -> None:
        while conn.outstanding < self.depth:
            seq = conn.next_seq
            addr = self.slot_addr(conn.index, seq)
            wr = RecvWR(wr_id=seq,
                        sges=[make_sge(self.mr, addr - self.buf_addr, self.msg_size)])
            self.lib.post_recv(conn.qp, wr)
            conn.next_seq += 1
            conn.outstanding += 1

    def _receiver_loop(self):
        sim = self.server.sim
        poll_sleep = self._poll_sleep_s()
        try:
            while self.running:
                drained = self._drain_completions()
                cpu_s = self.process.cpu.drain_seconds()
                yield sim.timeout(max(cpu_s, poll_sleep if drained else IDLE_POLL_S))
        except Interrupt:
            return

    def _handle_recv_wc(self, conn, wc) -> None:
        index = conn.index
        if wc.wr_id != conn.expect_recv_seq:
            self.stats.order_errors.append(
                f"{self.name} qp {wc.qp_num:#x}: expected recv seq "
                f"{conn.expect_recv_seq}, got {wc.wr_id}")
            conn.expect_recv_seq = wc.wr_id + 1
        else:
            conn.expect_recv_seq += 1
        if self.verify_content:
            addr = self.slot_addr(index, wc.wr_id)
            blob = self.process.space.read(addr, 16)
            seq = int.from_bytes(blob[:8], "little")
            tag = blob[12:16]
            if seq != wc.wr_id or tag != b"PERF":
                self.stats.content_errors.append(
                    f"{self.name} recv seq {wc.wr_id}: payload carries seq {seq} tag {tag!r}")
        conn.recv_completed += 1
        conn.outstanding -= 1
        self.stats.recv_completed += 1
        self.stats.bytes_completed += wc.byte_len
        if self.running and self._receiver_active:
            self._repost_recv(conn)

    # ------------------------------------------------------------------
    # migration transparency hook
    # ------------------------------------------------------------------

    def on_migrated(self, session, restored_container: Container) -> None:
        """Called by the orchestrator after restore: re-home and resume.

        The endpoint's logical state (sequence numbers, stats) lives in the
        Python object — the analogue of restored process memory; the verbs
        wrappers stay valid because MigrRDMA virtualizes them.
        """
        self.container = restored_container
        self.process = session.processes[self.process.pid]
        self.server = restored_container.server
        if self.running:
            if self._sender_active:
                self.process.attach(self.server.sim.spawn(
                    self._sender_loop(), name=f"{self.name}:tx"))
            if self._receiver_active:
                self.process.attach(self.server.sim.spawn(
                    self._receiver_loop(), name=f"{self.name}:rx"))

    def on_rollback(self, container: Container) -> None:
        """Called by the orchestrator when a migration rolls back after the
        freeze: the container was thawed in place on the *source*, so only
        the interrupted loops need respawning — no re-homing, the endpoint
        never moved."""
        if self.running:
            if self._sender_active:
                self.process.attach(self.server.sim.spawn(
                    self._sender_loop(), name=f"{self.name}:tx"))
            if self._receiver_active:
                self.process.attach(self.server.sim.spawn(
                    self._receiver_loop(), name=f"{self.name}:rx"))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def throughput_gbps(self, elapsed_s: float) -> float:
        """Goodput over ``elapsed_s`` from the completed-bytes counter."""
        if elapsed_s <= 0:
            raise ValueError("elapsed time must be positive")
        return self.stats.bytes_completed * 8 / elapsed_s / 1e9


def run_pingpong(tb, a: "PerftestEndpoint", b: "PerftestEndpoint",
                 iters: int = 1000, msg_size: int = 8, gap_s: float = 0.0):
    """Generator: perftest's latency test — SEND ping-pong on one QP pair.

    Returns the list of per-iteration round-trip times (simulated seconds).
    ``a`` and ``b`` must be set up and connected with one QP each; traffic
    loops must NOT be running (the latency test drives the QPs itself).
    """
    sim = tb.sim
    conn_a, conn_b = a.connections[0], b.connections[0]
    rtts = []

    def responder():
        pong = 0
        while pong < iters:
            wcs = b.lib.poll_cq(b.cq, 4)
            progressed = False
            for wc in wcs:
                if wc.opcode is Opcode.RECV and wc.ok:
                    b.lib.post_recv(conn_b.qp, RecvWR(
                        wr_id=wc.wr_id + 1, sges=[make_sge(b.mr, 0, msg_size)]))
                    b.lib.post_send(conn_b.qp, SendWR(
                        wr_id=pong, opcode=Opcode.SEND, signaled=False,
                        sges=[make_sge(b.mr, 0, msg_size)]))
                    pong += 1
                    progressed = True
            yield sim.timeout(b.process.cpu.drain_seconds()
                              if progressed else IDLE_POLL_S / 4)

    b.lib.post_recv(conn_b.qp, RecvWR(wr_id=0, sges=[make_sge(b.mr, 0, msg_size)]))
    responder_proc = sim.spawn(responder(), name="lat-responder")

    for i in range(iters):
        a.lib.post_recv(conn_a.qp, RecvWR(
            wr_id=i, sges=[make_sge(a.mr, 0, msg_size)]))
        started = sim.now
        a.lib.post_send(conn_a.qp, SendWR(
            wr_id=i, opcode=Opcode.SEND, signaled=False,
            sges=[make_sge(a.mr, msg_size, msg_size)]))
        got_pong = False
        while not got_pong:
            for wc in a.lib.poll_cq(a.cq, 4):
                if wc.opcode is Opcode.RECV and wc.ok:
                    got_pong = True
            yield sim.timeout(a.process.cpu.drain_seconds() or IDLE_POLL_S / 4)
        rtts.append(sim.now - started)
        if gap_s:
            yield sim.timeout(gap_s)  # application think time between pings
    yield responder_proc
    return rtts


def latency_percentiles(rtts, percentiles=(50, 99)):
    """Median/tail picks from a ping-pong run (seconds)."""
    ordered = sorted(rtts)
    out = {}
    for p in percentiles:
        index = min(len(ordered) - 1, int(round(p / 100 * len(ordered))) )
        out[p] = ordered[index]
    return out


def connect_endpoints(a: PerftestEndpoint, b: PerftestEndpoint, qp_count: int = 1):
    """Generator: create and connect ``qp_count`` QP pairs between two
    endpoints, exchanging QPNs/rkeys out of band (as applications do)."""
    sim = a.server.sim
    for i in range(qp_count):
        ca = yield from a.add_qp()
        cb = yield from b.add_qp()
        # Out-of-band exchange (sockets in real deployments): QPNs, buffer
        # addresses and rkeys — all *virtual* values under MigrRDMA.
        yield sim.timeout(50e-6)
        ca.peer_name = b.name
        cb.peer_name = a.name
        ca.remote_addr = b.buf_addr + len(b.connections[:-1]) * b.buffer_bytes_per_qp()
        ca.remote_rkey = b.mr.rkey
        cb.remote_addr = a.buf_addr + len(a.connections[:-1]) * a.buffer_bytes_per_qp()
        cb.remote_rkey = a.mr.rkey
        yield from a.lib.connect(ca.qp, b.server.name, cb.qp.qpn)
        yield from b.lib.connect(cb.qp, a.server.name, ca.qp.qpn)
