"""Application workloads: perftest (microbenchmarks), RDMA-Hadoop, and
the RDMA key-value store — plus the WorkloadContract conformance layer
they all ride."""

from repro.apps.contract import (
    WorkloadHarness,
    hadoop_harness,
    perftest_harness,
    run_contract,
)
from repro.apps.kvstore import (
    KvClient,
    KvServer,
    KvTable,
    KvTableLayout,
    check_kv_history,
    connect_kv,
)
from repro.apps.perftest import (
    PerftestEndpoint,
    connect_endpoints,
    latency_percentiles,
    run_pingpong,
)

__all__ = ["KvClient", "KvServer", "KvTable", "KvTableLayout",
           "PerftestEndpoint", "WorkloadHarness", "check_kv_history",
           "connect_endpoints", "connect_kv", "hadoop_harness",
           "latency_percentiles", "perftest_harness", "run_contract",
           "run_pingpong"]
