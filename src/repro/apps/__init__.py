"""Application workloads: perftest (microbenchmarks) and RDMA-Hadoop."""

from repro.apps.perftest import (
    PerftestEndpoint,
    connect_endpoints,
    latency_percentiles,
    run_pingpong,
)

__all__ = ["PerftestEndpoint", "connect_endpoints", "latency_percentiles",
           "run_pingpong"]
