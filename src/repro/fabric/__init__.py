"""Network fabric substrate.

Models the paper's testbed fabric: servers with 100 Gbps ports connected by
a single switch hop.  Each node has an egress :class:`~repro.fabric.port.Port`
that serializes transmissions at line rate — so RDMA traffic, migration TCP
traffic and control messages naturally contend for the same wire, which is
what produces the brownout effects in Figure 5.  A configurable loss model
supports the "buggy network" wait-before-stop experiments (§3.4).

For fleet-scale scenarios, :class:`~repro.fabric.topology.FatTreeTopology`
extends the flat switch to racks of hosts behind oversubscribed ToR trunk
ports, so concurrent migrations contend for shared uplink bandwidth.
"""

from repro.fabric.message import Message
from repro.fabric.port import Port
from repro.fabric.network import Network, Node
from repro.fabric.tcp import TcpChannel
from repro.fabric.topology import FatTreeTopology

__all__ = ["FatTreeTopology", "Message", "Network", "Node", "Port", "TcpChannel"]
