"""Wire messages.

A :class:`Message` is what crosses the fabric: it carries an explicit wire
size (which determines serialization time) and an arbitrary payload object
interpreted by the receiving protocol handler (RDMA engine, TCP endpoint,
or the migration control plane).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_message_ids = itertools.count(1)


@dataclass
class Message:
    """A unit of transmission on the fabric."""

    src: str
    dst: str
    protocol: str
    size_bytes: int
    payload: Any = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size: {self.size_bytes}")

    def __repr__(self) -> str:
        return (
            f"<Message #{self.msg_id} {self.src}->{self.dst} "
            f"proto={self.protocol} {self.size_bytes}B>"
        )
