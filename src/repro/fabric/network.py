"""The fabric: nodes, a one-hop switch, and loss injection.

Topology matches the paper's testbed — six servers behind one Arista
switch — generalised to any number of nodes.  Delivery = egress
serialization (the sender's :class:`~repro.fabric.port.Port`) + a fixed
propagation/switching delay.  An optional Bernoulli loss model drops
messages in flight; reliability is the job of the protocol layers (the RC
engine retransmits, the TCP channel retransmits).
"""

from __future__ import annotations

import random
import warnings
from typing import Callable, Dict, Optional

from repro.config import Config, default_config
from repro.fabric.message import Message
from repro.fabric.port import Port
from repro.sim import Simulator

Handler = Callable[[Message], None]


class Node:
    """A server attached to the fabric: one egress port, protocol handlers."""

    def __init__(self, network: "Network", name: str, rate_bps: float):
        self.network = network
        self.name = name
        self.port = Port(network.sim, rate_bps, name=name)
        self._handlers: Dict[str, Handler] = {}

    def register_handler(self, protocol: str, handler: Handler) -> None:
        if protocol in self._handlers:
            raise ValueError(f"{self.name}: handler for protocol {protocol!r} already registered")
        self._handlers[protocol] = handler

    def unregister_handler(self, protocol: str, missing_ok: bool = False) -> None:
        """Remove a protocol handler.

        Mirrors :meth:`register_handler`'s strictness: unregistering a
        protocol that was never registered raises :class:`LookupError`
        (it usually means a typo or a double-close), unless the caller
        passes ``missing_ok=True`` for idempotent teardown paths.
        """
        if protocol not in self._handlers:
            if missing_ok:
                return
            raise LookupError(
                f"{self.name}: no handler registered for protocol {protocol!r}")
        del self._handlers[protocol]

    def deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.protocol)
        if handler is None:
            raise LookupError(
                f"{self.name}: no handler for protocol {message.protocol!r} "
                f"(message {message!r})"
            )
        handler(message)

    def send(self, message: Message) -> None:
        """Queue a message for transmission through this node's port."""
        if message.src != self.name:
            raise ValueError(f"message src {message.src!r} does not match node {self.name!r}")
        self.network.transmit(message)

    def __repr__(self) -> str:
        return f"<Node {self.name}>"


class Network:
    """All nodes plus the switch's propagation and loss behaviour."""

    def __init__(self, sim: Simulator, config: Optional[Config] = None):
        self.sim = sim
        self.config = config or default_config()
        self.nodes: Dict[str, Node] = {}
        self.loss_rate = 0.0
        self._rng = random.Random(self.config.seed ^ 0x5EED)
        self.messages_sent = 0
        self.messages_dropped = 0
        #: scoped fault hook (see :mod:`repro.chaos.plan`): consulted per
        #: in-flight message; ``None`` keeps the unfaulted fast path.
        self.fault_injector = None
        #: master switch for the RNIC express lane (flow-level aggregation
        #: of clean-window bulk traffic); any fault source disables it at
        #: the per-WR gate independently of this flag.
        self.flow_aggregation = getattr(self.config, "flow_aggregation", True)
        #: optional multi-hop routing (see :mod:`repro.fabric.topology`);
        #: ``None`` keeps the flat one-hop switch, byte-identical to the
        #: paper's testbed.  Installed via ``FatTreeTopology.attach``.
        self.topology = None

    def add_node(self, name: str, rate_bps: Optional[float] = None) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = Node(self, name, rate_bps or self.config.link.rate_bps)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise LookupError(f"unknown node {name!r}") from None

    def set_loss_rate(self, loss_rate: float) -> None:
        """Deprecated: global Bernoulli loss with no scope and no owner —
        state set here silently leaks into every later scenario sharing the
        network.  Use a :class:`repro.chaos.FaultPlan` (``drop()`` rules are
        scoped per link/protocol/window and uninstallable) and
        :meth:`reset_faults` instead.
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        warnings.warn(
            "Network.set_loss_rate is deprecated; use repro.chaos.FaultPlan"
            ".drop(...).install(...) for scoped, resettable loss",
            DeprecationWarning, stacklevel=2)
        self.flow_invalidate_all()
        self.loss_rate = loss_rate

    def flow_invalidate_all(self) -> None:
        """De-aggregation hook: turn every pending express-lane reservation
        back into packet-level events.  Called whenever a fault source is
        armed (or disarmed) network-wide, so chaos and torture runs observe
        packet-for-packet identical traffic."""
        for node in self.nodes.values():
            lane = node.port.flow_lane
            if lane is not None:
                lane.materialize("fault-window")

    def reset_faults(self) -> None:
        """Clear every fault source: legacy global loss and any installed
        fault injector.  Scenario teardown calls this so chaos state cannot
        leak between tests."""
        self.loss_rate = 0.0
        self.fault_injector = None

    def transmit(self, message: Message) -> None:
        src = self.node(message.src)
        self.node(message.dst)  # validate early
        self.messages_sent += 1
        src.port.transmit(message.size_bytes, self._propagate, message)

    def transmit_raw(self, src: str, dst: str, size_bytes: int, protocol: str, payload) -> None:
        """Inject a message whose serialization was already metered.

        Protocol engines (the RNIC) that explicitly wait on their port use
        this to hand the fully-serialized message to the switch without
        paying serialization twice.
        """
        self.node(src)
        self.node(dst)
        self.messages_sent += 1
        self._propagate(Message(src=src, dst=dst, protocol=protocol,
                                size_bytes=size_bytes, payload=payload))

    def _propagate(self, message: Message) -> None:
        injector = self.fault_injector
        if injector is not None:
            verdict = injector.intercept(message, self.sim.now)
            if verdict is not None:
                # A fault rule matched: [] = drop, one entry per delivery
                # (several = duplication), each an extra delay on top of
                # propagation.  Unmatched messages fall through unchanged.
                if not verdict:
                    self.messages_dropped += 1
                    return
                if self.topology is not None:
                    for extra in verdict:
                        self.topology.route(message, extra)
                    return
                dst = self.node(message.dst)
                base = self.config.link.propagation_delay_s
                for extra in verdict:
                    self.sim.schedule(base + extra, dst.deliver, message)
                return
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.messages_dropped += 1
            return
        if self.topology is not None:
            self.topology.route(message)
            return
        dst = self.node(message.dst)
        self.sim.schedule(self.config.link.propagation_delay_s, dst.deliver, message)
