"""Egress port: a single server draining transmissions at line rate.

All traffic a node originates — RDMA payloads, migration TCP segments,
control-plane notifications — funnels through its port, so serialization
delay and cross-traffic contention fall out of the model for free.  This is
what makes the wait-before-stop theory line (inflight bytes / link rate)
hold in Figure 4.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim import Event, Queue, Simulator


class Port:
    """FIFO egress scheduler with a fixed drain rate.

    Transmissions are ``(size_bytes, on_wire_done)`` pairs; ``on_wire_done``
    fires once the last bit has been serialized onto the wire (propagation
    is the network's job).
    """

    def __init__(self, sim: Simulator, rate_bps: float, name: str = ""):
        if rate_bps <= 0:
            raise ValueError(f"port rate must be positive, got {rate_bps}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.name = name
        self._queue: Queue = Queue(sim)
        self._bytes_sent = 0
        self._busy_until = 0.0
        #: Optional callable returning a serialization slowdown factor
        #: (>= 1.0); used to model NIC-internal contention during
        #: control-path bursts (Figure 5 brownout dips).
        self.contention_factor = None
        sim.spawn(self._drain(), name=f"port:{name}")

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def serialization_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.rate_bps

    def transmit(self, size_bytes: int, on_wire_done: Optional[Callable[[], None]] = None) -> Event:
        """Enqueue a transmission; the returned event fires at wire-done."""
        done = self.sim.event()
        self._queue.put((size_bytes, on_wire_done, done))
        return done

    def _drain(self):
        while True:
            size_bytes, on_wire_done, done = yield self._queue.get()
            if size_bytes > 0:
                delay = self.serialization_time(size_bytes)
                if self.contention_factor is not None:
                    delay *= max(1.0, self.contention_factor())
                yield self.sim.timeout(delay)
            self._bytes_sent += size_bytes
            self._busy_until = self.sim.now
            if on_wire_done is not None:
                on_wire_done()
            done.succeed(self.sim.now)
