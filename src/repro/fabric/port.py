"""Egress port: a single server draining transmissions at line rate.

All traffic a node originates — RDMA payloads, migration TCP segments,
control-plane notifications — funnels through its port, so serialization
delay and cross-traffic contention fall out of the model for free.  This is
what makes the wait-before-stop theory line (inflight bytes / link rate)
hold in Figure 4.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.sim import Event, Simulator


class Port:
    """FIFO egress scheduler with a fixed drain rate.

    Implemented event-driven rather than as a resident drain process: each
    transmission costs one scheduled finish event instead of a queue
    round-trip plus a timeout, which matters because every byte any model
    component sends funnels through here.
    """

    def __init__(self, sim: Simulator, rate_bps: float, name: str = ""):
        if rate_bps <= 0:
            raise ValueError(f"port rate must be positive, got {rate_bps}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.name = name
        self._pending: Deque[tuple] = deque()
        self._active = False
        self._bytes_sent = 0
        self._busy_until = 0.0
        #: Optional callable returning a serialization slowdown factor
        #: (>= 1.0); used to model NIC-internal contention during
        #: control-path bursts (Figure 5 brownout dips).
        self.contention_factor = None
        #: Express-lane reservation (see ``repro.rnic.nic._FlowLane``):
        #: while bulk RC traffic is aggregated at flow level, the acks it
        #: elides notionally occupy this port.  Any foreign transmission
        #: forces those reservations back into packet-level port items
        #: before it is queued, so contention stays exact.
        self.flow_lane = None

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent

    @property
    def backlog(self) -> int:
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        """Bytes queued behind the in-flight transmission.

        Head-of-line estimate for control messages sharing this port with
        bulk data: a new transmission waits roughly
        ``pending_bytes * 8 / rate_bps`` before its first byte serializes.
        """
        return sum(item[0] for item in self._pending)

    def serialization_time(self, size_bytes: int) -> float:
        return size_bytes * 8.0 / self.rate_bps

    def transmit(self, size_bytes: int, on_wire_done: Optional[Callable] = None,
                 *cb_args) -> Event:
        """Enqueue a transmission; the returned event fires at wire-done.

        ``on_wire_done(*cb_args)`` (if given) runs at that moment — passing
        the args here lets hot callers avoid a closure per message.
        """
        lane = self.flow_lane
        if lane is not None:
            lane.materialize("port-conflict")
        done = self.sim.event()
        item = (size_bytes, on_wire_done, cb_args, done)
        if self._active:
            self._pending.append(item)
        else:
            self._active = True
            self._begin(item)
        return done

    def _begin(self, item: tuple) -> None:
        size_bytes = item[0]
        delay = 0.0
        if size_bytes > 0:
            delay = size_bytes * 8.0 / self.rate_bps
            if self.contention_factor is not None:
                factor = self.contention_factor()
                if factor > 1.0:
                    delay *= factor
        self.sim.schedule(delay, self._finish, item)

    def _finish(self, item: tuple) -> None:
        size_bytes, on_wire_done, cb_args, done = item
        self._bytes_sent += size_bytes
        self._busy_until = self.sim.now
        if on_wire_done is not None:
            on_wire_done(*cb_args)
        done.succeed(self.sim.now)
        if self._pending:
            self._begin(self._pending.popleft())
        else:
            self._active = False
