"""Multi-host fat-tree topology: racks of hosts behind oversubscribed trunks.

The flat :class:`~repro.fabric.network.Network` models every host on one
non-blocking switch: a message serializes on the sender's NIC port and is
delivered one propagation delay later.  That is the right model for the
paper's two-node testbed, but fleet-scale migration is a *bandwidth
scheduling* problem — concurrent migrations out of one rack share that
rack's ToR uplink, and the uplink is slower than the sum of the host NICs
(oversubscription).  This module adds exactly that contention and nothing
else.

Model
-----
Each rack gets a pair of :class:`~repro.fabric.port.Port` objects — an
uplink (ToR → spine) and a downlink (spine → ToR) — whose rate is::

    hosts_per_rack * link.rate_bps / oversubscription

The spine itself is non-blocking (a fat tree's core is, by construction;
the oversubscription lives at the ToR).  Routing is then:

* **same rack** (or an unmapped node, e.g. a test double): identical to
  the flat network — one propagation delay, no extra serialization.
* **cross rack**: propagation to the ToR, serialization on the source
  rack's uplink, propagation across the spine, serialization on the
  destination rack's downlink, propagation to the host.  Three hops, two
  oversubscribed trunk serializations, all FIFO per trunk.

:meth:`FatTreeTopology.attach` hooks the topology into a ``Network``;
``Network._propagate`` then routes every message (including raw RNIC
traffic) through :meth:`route`.  Attaching disables flow-level
aggregation: the express lane computes delivery times from the sender's
port alone, which is unsound once messages queue on shared trunks.

The per-trunk ``Port``s expose byte counters and backlog, which is what
fleet reporting (``FleetReport`` per-link utilisation) and the chaos
uplink-degrade fault build on — degrading a ToR uplink is just installing
a ``contention_factor`` on its ``Port``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from .port import Port

__all__ = ["FatTreeTopology"]


class FatTreeTopology:
    """Racks of hosts joined by oversubscribed ToR trunk ports.

    ``racks`` maps rack name to the ordered list of host (node) names in
    that rack.  Hosts not listed route exactly like the flat network, so
    a topology can be attached to a network that also carries unmapped
    utility nodes.
    """

    def __init__(self, sim, config, racks: Mapping[str, Sequence[str]],
                 oversubscription: float = 4.0):
        if not racks:
            raise ValueError("topology needs at least one rack")
        if oversubscription <= 0:
            raise ValueError(
                f"oversubscription must be > 0, got {oversubscription}")
        self.sim = sim
        self.config = config
        self.oversubscription = float(oversubscription)
        self.prop_s = config.link.propagation_delay_s
        self.racks: Dict[str, List[str]] = {}
        self.rack_of: Dict[str, str] = {}
        for rack, hosts in racks.items():
            hosts = list(hosts)
            if not hosts:
                raise ValueError(f"rack {rack!r} has no hosts")
            self.racks[rack] = hosts
            for host in hosts:
                if host in self.rack_of:
                    raise ValueError(f"host {host!r} appears in rack "
                                     f"{self.rack_of[host]!r} and {rack!r}")
                self.rack_of[host] = rack
        #: ToR trunk ports, one pair per rack.  Rate scales with rack size
        #: so the oversubscription ratio means the same thing at any size.
        self.uplinks: Dict[str, Port] = {}
        self.downlinks: Dict[str, Port] = {}
        for rack, hosts in self.racks.items():
            trunk_bps = len(hosts) * config.link.rate_bps / self.oversubscription
            self.uplinks[rack] = Port(sim, trunk_bps, name=f"{rack}:up")
            self.downlinks[rack] = Port(sim, trunk_bps, name=f"{rack}:down")
        self.network = None
        #: Routing counters (not digested; reporting reads link_stats()).
        self.local_messages = 0
        self.cross_rack_messages = 0
        self._attached_at = 0.0

    # ------------------------------------------------------------------
    # Wiring

    def attach(self, network) -> "FatTreeTopology":
        """Install this topology on ``network``; all subsequent deliveries
        route through it.  One topology per network, attach-once."""
        if network.topology is not None:
            raise RuntimeError("network already has a topology attached")
        if self.network is not None:
            raise RuntimeError("topology already attached to a network")
        # Flow-level aggregation's express lane derives delivery time from
        # the sender's port alone; multi-hop trunk queueing breaks that
        # closed form, so the fleet path runs per-message.
        network.flow_aggregation = False
        network.flow_invalidate_all()
        network.topology = self
        self.network = network
        self._attached_at = self.sim.now
        return self

    # ------------------------------------------------------------------
    # Routing (called from Network._propagate for every delivery)

    def route(self, message, extra_delay_s: float = 0.0) -> None:
        """Deliver ``message`` along its topology path.  ``extra_delay_s``
        carries any fault-injector delay and is applied on the first hop,
        matching the flat network's behaviour."""
        dst = self.network.node(message.dst)
        src_rack = self.rack_of.get(message.src)
        dst_rack = self.rack_of.get(message.dst)
        if src_rack is None or dst_rack is None or src_rack == dst_rack:
            # Same switch: byte-identical to the flat network.
            self.local_messages += 1
            self.sim.schedule(self.prop_s + extra_delay_s, dst.deliver, message)
            return
        self.cross_rack_messages += 1
        self.sim.schedule(self.prop_s + extra_delay_s, self._enter_uplink,
                          self.uplinks[src_rack], self.downlinks[dst_rack],
                          dst, message)

    # The hop chain threads state through Port.transmit cb_args / schedule
    # args instead of closures — same no-allocation discipline as the RNIC.

    def _enter_uplink(self, up: Port, down: Port, dst, message) -> None:
        up.transmit(message.size_bytes, self._cross_spine, down, dst, message)

    def _cross_spine(self, down: Port, dst, message) -> None:
        self.sim.schedule(self.prop_s, self._enter_downlink, down, dst, message)

    def _enter_downlink(self, down: Port, dst, message) -> None:
        down.transmit(message.size_bytes, self._last_hop, dst, message)

    def _last_hop(self, dst, message) -> None:
        self.sim.schedule(self.prop_s, dst.deliver, message)

    # ------------------------------------------------------------------
    # Accounting (fleet reporting + chaos faults)

    def uplink(self, rack: str) -> Port:
        return self.uplinks[rack]

    def downlink(self, rack: str) -> Port:
        return self.downlinks[rack]

    def trunk_ports(self) -> Dict[str, Port]:
        """All trunk ports keyed ``"<rack>:up"`` / ``"<rack>:down"``."""
        out: Dict[str, Port] = {}
        for rack in self.racks:
            out[f"{rack}:up"] = self.uplinks[rack]
            out[f"{rack}:down"] = self.downlinks[rack]
        return out

    def link_stats(self, now: Optional[float] = None) -> Dict[str, dict]:
        """Per-trunk bytes and mean utilisation since attach."""
        if now is None:
            now = self.sim.now
        elapsed = max(now - self._attached_at, 1e-12)
        stats: Dict[str, dict] = {}
        for name, port in self.trunk_ports().items():
            stats[name] = {
                "rate_bps": port.rate_bps,
                "bytes": port.bytes_sent,
                "utilization": (port.bytes_sent * 8.0) / (port.rate_bps * elapsed),
            }
        return stats

    def __repr__(self) -> str:
        return (f"<FatTreeTopology racks={len(self.racks)} "
                f"hosts={len(self.rack_of)} "
                f"oversub={self.oversubscription:g}>")
