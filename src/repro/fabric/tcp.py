"""A reliable byte-stream + RPC channel over the fabric.

MigrRDMA transfers checkpoint state over TCP (§7: "uses TCP to transfer the
states") and uses out-of-band messaging for partner notification and
rkey/remote-QPN fetches.  This module models both:

- :meth:`TcpChannel.transfer` — a paced, windowed, loss-recovering bulk
  transfer whose goodput is capped at the configured TCP rate,
- :meth:`TcpChannel.rpc` — a request/response exchange with at-least-once
  retransmission, used for the control plane.

The implementation is deliberately not a full TCP: it keeps exactly the
behaviours the experiments depend on (transfer time = bytes/goodput + RTT,
inflation under loss, wire contention through the shared egress port).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.fabric.message import Message
from repro.fabric.network import Network
from repro.resilience.errors import RpcTimeout
from repro.sim import Event

_channel_ids = itertools.count(1)

SEGMENT_BYTES = 64 * 1024
ACK_BYTES = 64
RPC_HEADER_BYTES = 96


class TcpChannel:
    """One bidirectional reliable channel between two named nodes."""

    def __init__(self, network: Network, local: str, remote: str, rate_bps: Optional[float] = None):
        self.network = network
        self.sim = network.sim
        self.local = local
        self.remote = remote
        self.channel_id = next(_channel_ids)
        mig = network.config.migration
        self.rate_bps = rate_bps or mig.transfer_rate_bps
        self.rtt_s = mig.transfer_rtt_s
        self.per_message_overhead_s = mig.per_message_overhead_s
        self.protocol = f"tcp:{self.channel_id}"

        self._acks: Dict[int, Set[int]] = {}  # transfer_id -> acked segment seqs
        self._ack_waiters: Dict[int, Event] = {}
        self._transfer_ids = itertools.count(1)
        self._rpc_ids = itertools.count(1)
        self._rpc_waiters: Dict[int, Event] = {}
        self._rpc_handler: Optional[Callable[[Any], Tuple[Any, int]]] = None
        self._seen_rpcs: Dict[int, Tuple[Any, int]] = {}
        self.bytes_delivered = 0

        network.node(local).register_handler(self.protocol, self._on_message)
        network.node(remote).register_handler(self.protocol, self._on_message)

    def close(self) -> None:
        # Idempotent teardown: closing twice is harmless.
        self.network.node(self.local).unregister_handler(self.protocol, missing_ok=True)
        self.network.node(self.remote).unregister_handler(self.protocol, missing_ok=True)

    # -- low-level send ------------------------------------------------------

    def _send(self, src: str, dst: str, size: int, payload: dict) -> None:
        self.network.node(src).send(
            Message(src=src, dst=dst, protocol=self.protocol, size_bytes=size, payload=payload)
        )

    def _on_message(self, message: Message) -> None:
        payload = message.payload
        kind = payload["kind"]
        if kind == "segment":
            self.bytes_delivered += payload["size"]
            self._send(
                message.dst,
                message.src,
                ACK_BYTES,
                {"kind": "ack", "transfer_id": payload["transfer_id"], "seq": payload["seq"]},
            )
        elif kind == "ack":
            acked = self._acks.setdefault(payload["transfer_id"], set())
            acked.add(payload["seq"])
            waiter = self._ack_waiters.get(payload["transfer_id"])
            if waiter is not None and not waiter.triggered:
                waiter.succeed()
        elif kind == "rpc_req":
            self._handle_rpc_request(message)
        elif kind == "rpc_resp":
            waiter = self._rpc_waiters.pop(payload["rpc_id"], None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(payload["result"])
        else:
            raise ValueError(f"unknown tcp payload kind {kind!r}")

    # -- bulk transfer ---------------------------------------------------------

    def transfer(self, nbytes: int, src: Optional[str] = None):
        """Generator process: reliably move ``nbytes`` from ``src`` to peer.

        Yields until the transfer is fully acknowledged; returns the elapsed
        simulated time.
        """
        src = src or self.local
        dst = self.remote if src == self.local else self.local
        started = self.sim.now
        if nbytes <= 0:
            yield self.sim.timeout(self.per_message_overhead_s)
            return self.sim.now - started

        transfer_id = next(self._transfer_ids)
        nsegments = (nbytes + SEGMENT_BYTES - 1) // SEGMENT_BYTES
        sizes = [SEGMENT_BYTES] * (nsegments - 1) + [nbytes - SEGMENT_BYTES * (nsegments - 1)]
        self._acks[transfer_id] = set()

        yield self.sim.timeout(self.per_message_overhead_s)
        outstanding = set(range(nsegments))
        port_rate = self.network.node(src).port.rate_bps
        attempts = 0
        while outstanding:
            attempts += 1
            if attempts > 64:
                raise RuntimeError(f"tcp transfer {transfer_id} failed to complete (loss too high?)")
            for seq in sorted(outstanding):
                size = sizes[seq]
                # Pace to the configured goodput.  transmit() is
                # non-blocking (the port serializes in parallel), so the
                # inter-segment gap is the full segment time at the target
                # rate; port serialization overlaps with the next gap unless
                # cross-traffic slows the port below the paced rate.
                if self.rate_bps < port_rate:
                    yield self.sim.timeout(size * 8.0 / self.rate_bps)
                self._send(
                    src, dst, size,
                    {"kind": "segment", "transfer_id": transfer_id, "seq": seq, "size": size},
                )
            # Wait an RTO for acknowledgements of this round, then retransmit
            # whatever is still missing.
            deadline = self.sim.now + max(4 * self.rtt_s, 2 * SEGMENT_BYTES * 8.0 / self.rate_bps)
            while outstanding and self.sim.now < deadline:
                waiter = self.sim.event()
                self._ack_waiters[transfer_id] = waiter
                yield self.sim.any_of([waiter, self.sim.timeout(deadline - self.sim.now)])
                outstanding -= self._acks[transfer_id]
            outstanding -= self._acks[transfer_id]
        self._ack_waiters.pop(transfer_id, None)
        del self._acks[transfer_id]
        yield self.sim.timeout(self.rtt_s / 2)  # final ack propagation
        return self.sim.now - started

    def transfer_time_estimate(self, nbytes: int) -> float:
        """Loss-free analytic transfer time (used by planners, not results)."""
        return self.per_message_overhead_s + nbytes * 8.0 / self.rate_bps + self.rtt_s

    # -- RPC -------------------------------------------------------------------

    def set_rpc_handler(self, handler: Callable[[Any], Tuple[Any, int]]) -> None:
        """Install the server-side handler: ``payload -> (result, resp_size)``."""
        self._rpc_handler = handler

    def _handle_rpc_request(self, message: Message) -> None:
        payload = message.payload
        rpc_id = payload["rpc_id"]
        if rpc_id in self._seen_rpcs:
            result, size = self._seen_rpcs[rpc_id]  # duplicate: replay response
        else:
            if self._rpc_handler is None:
                raise LookupError(f"tcp channel {self.channel_id}: no RPC handler installed")
            out = self._rpc_handler(payload["request"])
            if out is None:
                # The serving daemon is down: the request vanishes — no
                # response, and no dedup-cache entry, so a retransmission
                # after the daemon restarts is handled fresh.
                return
            result, size = out
            self._seen_rpcs[rpc_id] = (result, size)
        processing = self.network.config.migration.notify_processing_s
        self.sim.schedule(
            processing,
            lambda: self._send(
                message.dst, message.src, size,
                {"kind": "rpc_resp", "rpc_id": rpc_id, "result": result},
            ),
        )

    def rpc(self, request: Any, req_size: int = RPC_HEADER_BYTES, src: Optional[str] = None,
            deadline_s: Optional[float] = None):
        """Generator process: send a request, yield until the response.

        Retransmits on timeout (at-least-once; the server dedupes), returns
        the response payload.  With ``deadline_s`` (absolute simulated
        time) the call raises :class:`RpcTimeout` instead of retransmitting
        past the deadline — the hook ``ControlPlane.call_reliable`` bounds
        each attempt with.  A call whose response arrives before the
        deadline behaves bit-identically to an unbounded one.
        """
        src = src or self.local
        dst = self.remote if src == self.local else self.local
        rpc_id = next(self._rpc_ids)
        waiter = self.sim.event()
        self._rpc_waiters[rpc_id] = waiter
        attempts = 0
        while not waiter.triggered:
            if deadline_s is not None and self.sim.now >= deadline_s:
                self._rpc_waiters.pop(rpc_id, None)
                raise RpcTimeout(
                    f"rpc {rpc_id} on channel {self.channel_id} to {dst} "
                    f"missed its deadline after {attempts} transmissions",
                    dst=dst, attempts=attempts)
            attempts += 1
            if attempts > 64:
                raise RuntimeError(f"rpc {rpc_id} on channel {self.channel_id} timed out repeatedly")
            self._send(src, dst, req_size, {"kind": "rpc_req", "rpc_id": rpc_id, "request": request})
            interval = max(8 * self.rtt_s, 1e-3)
            if deadline_s is not None:
                interval = min(interval, max(deadline_s - self.sim.now, 1e-9))
            timeout = self.sim.timeout(interval)
            yield self.sim.any_of([waiter, timeout])
        return waiter.value
