"""Process virtual-memory substrate.

Models what CRIU manipulates during live migration: page-granular virtual
address spaces made of VMAs backed by page stores.  Page contents are real
``bytearray`` data so that RDMA operations move actual bytes and the
correctness checks (no loss/duplication/corruption across migration) are
meaningful.  ``mremap`` relocates a VMA's virtual range while keeping its
backing store — the primitive the paper relies on to restore MR memory and
on-chip memory at the application's original virtual addresses (§3.2, §3.3).
"""

from repro.mem.paging import PageStore
from repro.mem.address_space import VMA, AddressSpace, MemoryError_, align_down, align_up

__all__ = [
    "VMA",
    "AddressSpace",
    "MemoryError_",
    "PageStore",
    "align_down",
    "align_up",
]
