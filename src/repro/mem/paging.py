"""Page store: the "physical" backing of a VMA.

Pages are materialised lazily (a page never written reads as zeros) and a
dirty set records which pages changed since the last
:meth:`PageStore.collect_dirty` — the hook the pre-copy loop uses.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple, Union

from repro.config import PAGE_SIZE

#: Shared zero page for reads of never-written ranges.
_ZERO_PAGE = bytes(PAGE_SIZE)


class PageStore:
    """Sparse page-indexed byte storage with dirty tracking.

    Offsets are relative to the start of the owning VMA; the store survives
    ``mremap`` untouched, which is exactly the "physical address unchanged"
    semantics the paper depends on.
    """

    def __init__(self, length: int):
        if length <= 0 or length % PAGE_SIZE != 0:
            raise ValueError(f"length must be a positive multiple of {PAGE_SIZE}, got {length}")
        self.length = length
        #: Whole-page writes are stored as immutable ``bytes`` (zero-copy to
        #: read back); partially-written pages are mutable bytearrays.
        self._pages: Dict[int, Union[bytes, bytearray]] = {}
        self._dirty: Set[int] = set()

    @property
    def num_pages(self) -> int:
        return self.length // PAGE_SIZE

    @property
    def touched_pages(self) -> int:
        return len(self._pages)

    def _page(self, index: int) -> bytearray:
        """Materialise page ``index`` as a mutable bytearray.

        Pages written whole are stored as immutable ``bytes`` (cheap to
        store and to read back); this converts such a page copy-on-write.
        """
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        elif type(page) is bytes:
            page = bytearray(page)
            self._pages[index] = page
        return page

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.length:
            raise ValueError(f"range [{offset}, {offset + size}) outside store of length {self.length}")

    def read(self, offset: int, size: int) -> bytes:
        self._check_range(offset, size)
        pages = self._pages
        index, within = divmod(offset, PAGE_SIZE)
        if within + size <= PAGE_SIZE:
            # Fast path: the read stays within one page.
            page = pages.get(index)
            if page is None:
                return _ZERO_PAGE[:size]
            if size == PAGE_SIZE and type(page) is bytes:
                return page  # whole immutable page: zero-copy
            return bytes(page[within:within + size])
        if within == 0 and size % PAGE_SIZE == 0:
            # Page-aligned whole-page gather (the bulk-transfer common
            # case): one lookup per page, no slicing of immutable pages.
            get = pages.get
            return b"".join(
                page if type(page) is bytes
                else (_ZERO_PAGE if page is None else bytes(page))
                for page in map(get, range(index, index + size // PAGE_SIZE)))
        chunks = []
        while size > 0:
            take = PAGE_SIZE - within
            if take > size:
                take = size
            page = pages.get(index)
            if page is None:
                chunks.append(_ZERO_PAGE[:take])
            elif take == PAGE_SIZE:
                chunks.append(page if type(page) is bytes else bytes(page))
            else:
                chunks.append(bytes(page[within:within + take]))
            size -= take
            index += 1
            within = 0
        return b"".join(chunks)

    def write(self, offset: int, data: bytes) -> None:
        size = len(data)
        self._check_range(offset, size)
        pages = self._pages
        dirty = self._dirty
        index, within = divmod(offset, PAGE_SIZE)
        if within == 0 and size % PAGE_SIZE == 0 and type(data) is bytes:
            # Page-aligned whole-page writes from an immutable source (the
            # bulk-transfer common case): keep the slices themselves —
            # slicing ``bytes`` yields immutable ``bytes``, so no second
            # copy — and batch the dirty-set update.
            if size == PAGE_SIZE:
                pages[index] = data
                dirty.add(index)
                return
            npages = size // PAGE_SIZE
            pos = 0
            for k in range(index, index + npages):
                pages[k] = data[pos:pos + PAGE_SIZE]
                pos += PAGE_SIZE
            dirty.update(range(index, index + npages))
            return
        pos = 0
        while pos < size:
            take = PAGE_SIZE - within
            if take > size - pos:
                take = size - pos
            if take == PAGE_SIZE:
                # Whole-page store: keep the immutable slice itself (bytes
                # for a bytes source is zero-copy; partial writes convert
                # copy-on-write via _page).
                if size == PAGE_SIZE:
                    pages[index] = bytes(data)
                else:
                    pages[index] = bytes(data[pos:pos + PAGE_SIZE])
            else:
                page = pages.get(index)
                if page is None:
                    page = bytearray(PAGE_SIZE)
                    pages[index] = page
                elif type(page) is bytes:
                    page = bytearray(page)
                    pages[index] = page
                page[within:within + take] = data[pos:pos + take]
            dirty.add(index)
            pos += take
            index += 1
            within = 0

    # -- dirty tracking ----------------------------------------------------

    @property
    def dirty_pages(self) -> Set[int]:
        return set(self._dirty)

    def collect_dirty(self) -> Set[int]:
        """Return and clear the set of dirty page indices."""
        dirty, self._dirty = self._dirty, set()
        return dirty

    def mark_all_dirty(self) -> None:
        """Mark every materialised page dirty (first pre-copy iteration)."""
        self._dirty = set(self._pages.keys())

    # -- snapshot / restore --------------------------------------------------

    def snapshot_pages(self, indices) -> Dict[int, bytes]:
        """Copy out the given pages (zeros for never-written pages)."""
        out = {}
        for index in indices:
            if index < 0 or index >= self.num_pages:
                raise ValueError(f"page index {index} outside store")
            page = self._pages.get(index)
            out[index] = bytes(page) if page is not None else b"\x00" * PAGE_SIZE
        return out

    def install_pages(self, pages: Dict[int, bytes]) -> None:
        """Write page images (from a migration transfer) into the store."""
        for index, content in pages.items():
            if len(content) != PAGE_SIZE:
                raise ValueError(f"page image must be {PAGE_SIZE} bytes, got {len(content)}")
            if index < 0 or index >= self.num_pages:
                raise ValueError(f"page index {index} outside store")
            self._pages[index] = bytes(content)

    def iter_pages(self) -> Iterator[Tuple[int, bytes]]:
        for index in sorted(self._pages):
            yield index, bytes(self._pages[index])

    def clone(self) -> "PageStore":
        other = PageStore(self.length)
        # Immutable pages can be shared; mutable ones must be copied.
        other._pages = {i: p if type(p) is bytes else bytearray(p)
                        for i, p in self._pages.items()}
        other._dirty = set(self._dirty)
        return other
