"""Page store: the "physical" backing of a VMA.

Pages are materialised lazily (a page never written reads as zeros) and a
dirty set records which pages changed since the last
:meth:`PageStore.collect_dirty` — the hook the pre-copy loop uses.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from repro.config import PAGE_SIZE


class PageStore:
    """Sparse page-indexed byte storage with dirty tracking.

    Offsets are relative to the start of the owning VMA; the store survives
    ``mremap`` untouched, which is exactly the "physical address unchanged"
    semantics the paper depends on.
    """

    def __init__(self, length: int):
        if length <= 0 or length % PAGE_SIZE != 0:
            raise ValueError(f"length must be a positive multiple of {PAGE_SIZE}, got {length}")
        self.length = length
        self._pages: Dict[int, bytearray] = {}
        self._dirty: Set[int] = set()

    @property
    def num_pages(self) -> int:
        return self.length // PAGE_SIZE

    @property
    def touched_pages(self) -> int:
        return len(self._pages)

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.length:
            raise ValueError(f"range [{offset}, {offset + size}) outside store of length {self.length}")

    def read(self, offset: int, size: int) -> bytes:
        self._check_range(offset, size)
        chunks = []
        while size > 0:
            index, within = divmod(offset, PAGE_SIZE)
            take = min(size, PAGE_SIZE - within)
            page = self._pages.get(index)
            if page is None:
                chunks.append(b"\x00" * take)
            else:
                chunks.append(bytes(page[within:within + take]))
            offset += take
            size -= take
        return b"".join(chunks)

    def write(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        pos = 0
        size = len(data)
        while pos < size:
            index, within = divmod(offset + pos, PAGE_SIZE)
            take = min(size - pos, PAGE_SIZE - within)
            self._page(index)[within:within + take] = data[pos:pos + take]
            self._dirty.add(index)
            pos += take

    # -- dirty tracking ----------------------------------------------------

    @property
    def dirty_pages(self) -> Set[int]:
        return set(self._dirty)

    def collect_dirty(self) -> Set[int]:
        """Return and clear the set of dirty page indices."""
        dirty, self._dirty = self._dirty, set()
        return dirty

    def mark_all_dirty(self) -> None:
        """Mark every materialised page dirty (first pre-copy iteration)."""
        self._dirty = set(self._pages.keys())

    # -- snapshot / restore --------------------------------------------------

    def snapshot_pages(self, indices) -> Dict[int, bytes]:
        """Copy out the given pages (zeros for never-written pages)."""
        out = {}
        for index in indices:
            if index < 0 or index >= self.num_pages:
                raise ValueError(f"page index {index} outside store")
            page = self._pages.get(index)
            out[index] = bytes(page) if page is not None else b"\x00" * PAGE_SIZE
        return out

    def install_pages(self, pages: Dict[int, bytes]) -> None:
        """Write page images (from a migration transfer) into the store."""
        for index, content in pages.items():
            if len(content) != PAGE_SIZE:
                raise ValueError(f"page image must be {PAGE_SIZE} bytes, got {len(content)}")
            if index < 0 or index >= self.num_pages:
                raise ValueError(f"page index {index} outside store")
            self._pages[index] = bytearray(content)

    def iter_pages(self) -> Iterator[Tuple[int, bytes]]:
        for index in sorted(self._pages):
            yield index, bytes(self._pages[index])

    def clone(self) -> "PageStore":
        other = PageStore(self.length)
        other._pages = {i: bytearray(p) for i, p in self._pages.items()}
        other._dirty = set(self._dirty)
        return other
