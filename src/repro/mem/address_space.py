"""Virtual address spaces and VMAs.

An :class:`AddressSpace` is an ordered, non-overlapping set of
:class:`VMA` regions, each backed by a :class:`~repro.mem.paging.PageStore`.
The operations mirror what CRIU and the RDMA driver do on Linux:

- ``mmap`` with or without a fixed address (the restorer maps images at a
  temporary location; applications map at chosen addresses),
- ``mremap`` to move a VMA to a new virtual address *keeping its backing
  store* — used to put RDMA memory structures back at the application's
  original addresses during partial restore (§3.2) and to relocate on-chip
  memory mappings (§3.3),
- byte-level ``read``/``write`` that may span VMAs (RDMA data movement).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import PAGE_SIZE
from repro.mem.paging import PageStore


class MemoryError_(Exception):
    """Address-space misuse: overlaps, unmapped access, bad alignment."""


def align_up(value: int, alignment: int = PAGE_SIZE) -> int:
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int = PAGE_SIZE) -> int:
    return value // alignment * alignment


class VMA:
    """A contiguous mapped virtual range backed by a page store."""

    __slots__ = ("start", "store", "tag", "name")

    def __init__(self, start: int, store: PageStore, tag: str = "anon", name: str = ""):
        if start % PAGE_SIZE != 0:
            raise MemoryError_(f"VMA start {start:#x} is not page aligned")
        self.start = start
        self.store = store
        self.tag = tag
        self.name = name

    @property
    def length(self) -> int:
        return self.store.length

    @property
    def end(self) -> int:
        return self.start + self.length

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.start <= addr and addr + size <= self.end

    def overlaps(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end

    def __repr__(self) -> str:
        return f"<VMA {self.start:#x}-{self.end:#x} tag={self.tag} name={self.name!r}>"


class AddressSpace:
    """A process's virtual memory: sorted, non-overlapping VMAs."""

    #: Default placement base for address-hint-free mmap, like mmap_min_addr
    #: plus a healthy offset.
    MMAP_BASE = 0x7F00_0000_0000

    def __init__(self, name: str = ""):
        self.name = name
        self._vmas: List[VMA] = []  # kept sorted by start
        self._next_hint = self.MMAP_BASE
        self._hot_vma: Optional[VMA] = None  # last find() hit

    # -- lookup ------------------------------------------------------------

    def __iter__(self):
        return iter(self._vmas)

    def __len__(self) -> int:
        return len(self._vmas)

    @property
    def vmas(self) -> List[VMA]:
        return list(self._vmas)

    def find(self, addr: int) -> Optional[VMA]:
        """The VMA containing ``addr``, or None."""
        vma = self._hot_vma
        if vma is not None and vma.start <= addr < vma.start + vma.store.length:
            return vma
        vmas = self._vmas
        lo, hi = 0, len(vmas)
        while lo < hi:
            mid = (lo + hi) // 2
            vma = vmas[mid]
            if addr < vma.start:
                hi = mid
            elif addr >= vma.start + vma.store.length:
                lo = mid + 1
            else:
                self._hot_vma = vma
                return vma
        return None

    def find_range(self, addr: int, size: int) -> VMA:
        """The single VMA fully containing [addr, addr+size), else raise."""
        vma = self.find(addr)
        if vma is None or not vma.contains(addr, max(size, 1)):
            raise MemoryError_(
                f"{self.name}: range [{addr:#x}, {addr + size:#x}) not contained in one VMA"
            )
        return vma

    def vmas_overlapping(self, start: int, end: int) -> List[VMA]:
        return [v for v in self._vmas if v.overlaps(start, end)]

    def is_free(self, start: int, length: int) -> bool:
        return not self.vmas_overlapping(start, start + length)

    # -- mapping operations --------------------------------------------------

    def _insert(self, vma: VMA) -> VMA:
        if self.vmas_overlapping(vma.start, vma.end):
            raise MemoryError_(f"{self.name}: mapping at {vma.start:#x} overlaps an existing VMA")
        self._vmas.append(vma)
        self._vmas.sort(key=lambda v: v.start)
        return vma

    def mmap(
        self,
        length: int,
        addr: Optional[int] = None,
        tag: str = "anon",
        name: str = "",
        store: Optional[PageStore] = None,
    ) -> VMA:
        """Map a new region.  With ``addr`` the placement is fixed (and must
        be free); otherwise the space picks the next free slot.  An existing
        ``store`` can be supplied to map shared/restored backing memory.
        """
        length = align_up(length)
        if length <= 0:
            raise MemoryError_("mmap length must be positive")
        if store is not None and store.length != length:
            raise MemoryError_("supplied store length does not match mapping length")
        if addr is None:
            addr = self._find_free(length)
        elif addr % PAGE_SIZE != 0:
            raise MemoryError_(f"fixed mmap address {addr:#x} is not page aligned")
        return self._insert(VMA(addr, store or PageStore(length), tag=tag, name=name))

    def _find_free(self, length: int) -> int:
        addr = self._next_hint
        while not self.is_free(addr, length):
            addr = align_up(max(v.end for v in self.vmas_overlapping(addr, addr + length)))
        self._next_hint = addr + length
        return addr

    def munmap(self, addr: int) -> VMA:
        """Unmap the VMA starting exactly at ``addr``; returns it."""
        for i, vma in enumerate(self._vmas):
            if vma.start == addr:
                self._hot_vma = None
                return self._vmas.pop(i)
        raise MemoryError_(f"{self.name}: no VMA starts at {addr:#x}")

    def mremap(self, old_addr: int, new_addr: int) -> VMA:
        """Move a VMA to ``new_addr``, keeping its backing store.

        This is the Linux ``mremap(MREMAP_FIXED)`` semantics §3.3 relies on:
        "only changes the virtual memory address and keeps the physical
        address unchanged".
        """
        vma = self.munmap(old_addr)
        try:
            vma_new = VMA(new_addr, vma.store, tag=vma.tag, name=vma.name)
            return self._insert(vma_new)
        except MemoryError_:
            self._insert(vma)  # roll back
            raise

    # -- data access ---------------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        """Read bytes, spanning VMAs if contiguous; raises on holes."""
        vma = self.find(addr)
        if vma is None:
            raise MemoryError_(f"{self.name}: read fault at {addr:#x}")
        if addr + size <= vma.end:
            # Fast path: the whole range lives in one VMA.
            return vma.store.read(addr - vma.start, size)
        chunks = []
        while size > 0:
            if vma is None:
                raise MemoryError_(f"{self.name}: read fault at {addr:#x}")
            take = min(size, vma.end - addr)
            chunks.append(vma.store.read(addr - vma.start, take))
            addr += take
            size -= take
            vma = self.find(addr) if size > 0 else None
        return b"".join(chunks)

    def write(self, addr: int, data: bytes) -> None:
        size = len(data)
        vma = self.find(addr)
        if vma is not None and addr + size <= vma.end:
            # Fast path: the whole range lives in one VMA.
            vma.store.write(addr - vma.start, data)
            return
        pos = 0
        while pos < size:
            vma = self.find(addr + pos)
            if vma is None:
                raise MemoryError_(f"{self.name}: write fault at {addr + pos:#x}")
            take = min(size - pos, vma.end - (addr + pos))
            vma.store.write(addr + pos - vma.start, data[pos:pos + take])
            pos += take

    # -- migration support -----------------------------------------------------

    def total_mapped_bytes(self) -> int:
        return sum(v.length for v in self._vmas)

    def total_touched_pages(self) -> int:
        return sum(v.store.touched_pages for v in self._vmas)

    def mark_all_dirty(self) -> None:
        for vma in self._vmas:
            vma.store.mark_all_dirty()

    def collect_dirty(self) -> Dict[int, Dict[int, bytes]]:
        """Dirty page images keyed by VMA start address then page index."""
        out: Dict[int, Dict[int, bytes]] = {}
        for vma in self._vmas:
            dirty = vma.store.collect_dirty()
            if dirty:
                out[vma.start] = vma.store.snapshot_pages(dirty)
        return out

    def dirty_page_count(self) -> int:
        return sum(len(v.store.dirty_pages) for v in self._vmas)

    def layout(self) -> List[Tuple[int, int, str, str]]:
        """(start, length, tag, name) tuples — the 'memory table' CRIU dumps."""
        return [(v.start, v.length, v.tag, v.name) for v in self._vmas]

    def clone_layout(self) -> "AddressSpace":
        """An empty copy with the same name (used when restoring)."""
        return AddressSpace(name=self.name)
