"""Blackout breakdown accounting (Figure 3).

The migration workflow wraps each stop-and-copy phase in a
:class:`PhaseTimer`; the result is a :class:`BlackoutBreakdown` with the
five components the paper reports: DumpRDMA, DumpOthers, Transfer,
RestoreRDMA, FullRestore (plus any extra phases a variant records).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim import Simulator

#: Canonical phase order used in Figure 3's stacked bars.
PHASE_ORDER = ["DumpRDMA", "DumpOthers", "Transfer", "RestoreRDMA", "FullRestore"]


class BlackoutBreakdown:
    """Named phase durations accumulated during stop-and-copy."""

    def __init__(self):
        self.phases: Dict[str, float] = {}
        self.extra: Dict[str, float] = {}  # non-blackout observations (e.g. WBS)

    def add(self, phase: str, duration_s: float) -> None:
        if duration_s < 0:
            raise ValueError(f"negative phase duration for {phase}: {duration_s}")
        self.phases[phase] = self.phases.get(phase, 0.0) + duration_s

    def note(self, key: str, value: float) -> None:
        """Record a non-blackout measurement alongside the breakdown."""
        self.extra[key] = value

    @property
    def total_s(self) -> float:
        return sum(self.phases.values())

    def fraction(self, phase: str) -> float:
        total = self.total_s
        if total == 0:
            raise ValueError("empty breakdown")
        return self.phases.get(phase, 0.0) / total

    def ordered(self) -> List:
        """(phase, seconds) in canonical order, then any extras phases."""
        rows = [(p, self.phases[p]) for p in PHASE_ORDER if p in self.phases]
        rows += [(p, d) for p, d in self.phases.items() if p not in PHASE_ORDER]
        return rows

    def __repr__(self) -> str:
        inner = ", ".join(f"{p}={d * 1e3:.1f}ms" for p, d in self.ordered())
        return f"<BlackoutBreakdown total={self.total_s * 1e3:.1f}ms {inner}>"


class PhaseTimer:
    """Context-manager-style phase timing against simulated time.

    Not a real context manager because phases span generator yields; use::

        timer = PhaseTimer(sim, breakdown, "Transfer")
        timer.start()
        yield from ...
        timer.stop()
    """

    def __init__(self, sim: Simulator, breakdown: BlackoutBreakdown, phase: str):
        self.sim = sim
        self.breakdown = breakdown
        self.phase = phase
        self._started_at: Optional[float] = None
        self._span = None

    def start(self) -> "PhaseTimer":
        if self._started_at is not None:
            raise RuntimeError(f"phase {self.phase} already started")
        self._started_at = self.sim.now
        # When a tracer is attached, the phase also becomes a span on the
        # blackout-phases lane (same numbers as the breakdown, on a timeline).
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None and tracer.enabled:
            self._span = tracer.begin_span(
                tracer.lane("migration", "blackout-phases"), self.phase)
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError(f"phase {self.phase} was never started")
        duration = self.sim.now - self._started_at
        self.breakdown.add(self.phase, duration)
        self._started_at = None
        if self._span is not None:
            self._span.end(seconds=duration)
            self._span = None
        return duration
