"""Real-time throughput sampling from NIC byte counters.

Mirrors the paper's §5.5.2 methodology: perftest cannot report fine-grained
throughput, so the evaluation samples the Mellanox ethtool byte counters on
a 5 ms grid and differentiates.  Here the counters are the RNIC model's
``tx_bytes``/``rx_bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.sim import Interrupt, Simulator


@dataclass
class ThroughputSample:
    """One 5-ms sample: time and throughput in Gbps."""

    time_s: float
    tx_gbps: float
    rx_gbps: float


class ThroughputSampler:
    """Samples a pair of byte counters at a fixed interval."""

    def __init__(
        self,
        sim: Simulator,
        read_tx: Callable[[], int],
        read_rx: Callable[[], int],
        interval_s: float = 5e-3,
    ):
        if interval_s <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval_s}")
        self.sim = sim
        self.read_tx = read_tx
        self.read_rx = read_rx
        self.interval_s = interval_s
        self.samples: List[ThroughputSample] = []
        self._process = None

    @classmethod
    def for_nic(cls, sim: Simulator, nic, interval_s: float = 5e-3) -> "ThroughputSampler":
        return cls(sim, lambda: nic.tx_bytes, lambda: nic.rx_bytes, interval_s)

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("sampler already started")
        self._process = self.sim.spawn(self._run(), name="throughput-sampler")

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")
        self._process = None

    def _run(self):
        last_tx = self.read_tx()
        last_rx = self.read_rx()
        try:
            while True:
                yield self.sim.timeout(self.interval_s)
                tx, rx = self.read_tx(), self.read_rx()
                self.samples.append(ThroughputSample(
                    time_s=self.sim.now,
                    tx_gbps=(tx - last_tx) * 8 / self.interval_s / 1e9,
                    rx_gbps=(rx - last_rx) * 8 / self.interval_s / 1e9,
                ))
                last_tx, last_rx = tx, rx
        except Interrupt:
            return

    # -- analysis helpers -----------------------------------------------------

    def blackout_intervals(self, threshold_gbps: float = 0.5, direction: str = "rx"):
        """Contiguous sample runs where throughput fell below ``threshold``.

        Returns a list of (start_s, end_s) intervals.
        """
        intervals = []
        run_start: Optional[float] = None
        for sample in self.samples:
            value = sample.rx_gbps if direction == "rx" else sample.tx_gbps
            if value < threshold_gbps:
                if run_start is None:
                    run_start = sample.time_s - self.interval_s
            else:
                if run_start is not None:
                    intervals.append((run_start, sample.time_s - self.interval_s))
                    run_start = None
        if run_start is not None and self.samples:
            intervals.append((run_start, self.samples[-1].time_s))
        return intervals

    def mean_gbps(self, start_s: float, end_s: float, direction: str = "rx") -> float:
        values = [
            (s.rx_gbps if direction == "rx" else s.tx_gbps)
            for s in self.samples
            if start_s <= s.time_s <= end_s
        ]
        if not values:
            raise ValueError(f"no samples in window [{start_s}, {end_s}]")
        return sum(values) / len(values)
