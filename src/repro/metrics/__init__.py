"""Measurement machinery: CPU cycle accounting, NIC byte counters, blackout
breakdowns and throughput timelines."""

from repro.metrics.cycles import CpuContext, CycleSample
from repro.metrics.counters import ThroughputSample, ThroughputSampler
from repro.metrics.blackout import BlackoutBreakdown, PhaseTimer

__all__ = [
    "BlackoutBreakdown",
    "CpuContext",
    "CycleSample",
    "PhaseTimer",
    "ThroughputSample",
    "ThroughputSampler",
]
