"""Per-process CPU cycle accounting.

The data path of verbs (and of MigrRDMA's interposition layer) charges an
explicit cycle cost for every action it performs.  Charges accumulate in a
:class:`CpuContext`; application driver loops periodically convert accrued
cycles into simulated time (``yield sim.timeout(cpu.drain_seconds())``), so
CPU-bound workloads (small messages — the 512 B case of Figure 4b) are
CPU-limited in simulated time exactly as on real hardware, while the cycle
ledger doubles as the measurement source for Table 4.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.config import CpuConfig


@dataclass
class CycleSample:
    """One sampled operation cost (as perftest's cycle sampling records)."""

    op: str
    cycles: float


class CpuContext:
    """Cycle ledger for one application process (or interposition thread)."""

    def __init__(self, cpu_config: CpuConfig, seed: int = 0, record_samples: bool = False):
        self.config = cpu_config
        self._accrued_cycles = 0.0
        self.total_cycles = 0.0
        self.cycles_by_op: Dict[str, float] = defaultdict(float)
        self.count_by_op: Dict[str, int] = defaultdict(int)
        self.record_samples = record_samples
        self.samples: List[CycleSample] = []
        self._rng = random.Random(seed)
        self._pending_op: str = ""
        self._pending_cycles = 0.0

    # -- charging ---------------------------------------------------------

    def charge(self, op: str, cycles: float) -> None:
        """Charge ``cycles`` with small measurement jitter, booked under ``op``."""
        noise = self.config.measurement_noise_frac
        if noise:
            # Inlined random.uniform(-noise, noise): uniform(a, b) is
            # a + (b - a) * random(), and noise - (-noise) == noise + noise
            # exactly in IEEE arithmetic, so the RNG stream is unchanged.
            cycles *= 1.0 + (-noise + (noise + noise) * self._rng.random())
        self._accrued_cycles += cycles
        self.total_cycles += cycles
        self.cycles_by_op[op] += cycles
        self.count_by_op[op] += 1
        if self._pending_op:
            self._pending_cycles += cycles

    def charge_base(self, op: str) -> None:
        """Charge the configured base data-path cost for ``op``."""
        self.charge(op, self.config.base_cycles[op])

    # -- operation-scoped sampling (perftest extension, §5.5.1) -------------

    def begin_op_sample(self, op: str) -> None:
        self._pending_op = op
        self._pending_cycles = 0.0

    def end_op_sample(self) -> None:
        if self._pending_op and self.record_samples:
            self.samples.append(CycleSample(self._pending_op, self._pending_cycles))
        self._pending_op = ""
        self._pending_cycles = 0.0

    def mean_sample_cycles(self, op: str) -> float:
        values = [s.cycles for s in self.samples if s.op == op]
        if not values:
            raise ValueError(f"no samples recorded for op {op!r}")
        return sum(values) / len(values)

    # -- time conversion ------------------------------------------------------

    @property
    def accrued_seconds(self) -> float:
        return self._accrued_cycles / self.config.clock_hz

    def drain_seconds(self) -> float:
        """Return accrued CPU time as seconds and reset the accumulator."""
        seconds = self.accrued_seconds
        self._accrued_cycles = 0.0
        return seconds

    def mean_cycles(self, op: str) -> float:
        count = self.count_by_op.get(op, 0)
        if count == 0:
            raise ValueError(f"no operations charged under {op!r}")
        return self.cycles_by_op[op] / count
