"""Fleet assembly: racks of hosts, a fat-tree fabric, a running workload.

:class:`Fleet` is a :class:`~repro.cluster.ClusterBed` — the same
substrate the paper's two-node :class:`~repro.cluster.Testbed` is built
on — that stands up ``racks × hosts_per_rack`` servers behind a
:class:`~repro.fabric.FatTreeTopology`, installs the MigrRDMA world on
every host, registers everything in a :class:`~repro.fleet.state.FleetState`,
and populates the hosts with paired perftest containers (RDMA WRITE
sender → receiver, one QP pair each, paced so hundreds of endpoints stay
tractable).  A two-host, one-rack fleet is the degenerate case: same
wiring as the Testbed, no oversubscribed trunk in the path.

Container naming is positional (``ct000``, ``ct001``, ...) and *names*
are the identity the fleet layers use everywhere — ``container_id``
values depend on interpreter history and never appear in digests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.perftest import PerftestEndpoint, connect_endpoints
from repro.cluster import ClusterBed, Container
from repro.config import Config, MiB, default_config
from repro.core import MigrRdmaWorld
from repro.fabric import FatTreeTopology

from .state import FleetState

__all__ = ["Fleet", "FleetSpec", "build_fleet"]


@dataclass
class FleetSpec:
    """Shape and workload parameters of a fleet."""

    racks: int = 2
    hosts_per_rack: int = 4
    containers: int = 16
    #: ToR trunk oversubscription: trunk rate = hosts * NIC rate / this
    oversubscription: float = 4.0
    #: overrides config.seed when set (the determinism knob sweeps turn)
    seed: Optional[int] = None
    #: per-host capacity the state store enforces at placement time
    qp_quota: int = 64
    host_memory_bytes: int = 64 * MiB
    #: per-container workload: paced RDMA WRITE stream + synthetic heap
    msg_size: int = 8192
    depth: int = 4
    pace_s: float = 200e-6
    heap_bytes: int = 2 * MiB
    heap_dirty_bps: float = 8 * MiB
    verify_content: bool = True
    #: KV workload riding the fleet: server+client container pairs
    #: (0 = perftest-only, the historical fleet — digests unchanged)
    kv_pairs: int = 0
    kv_keyspace: int = 16
    kv_depth: int = 2
    kv_value_len: int = 32

    def __post_init__(self):
        if self.racks < 1:
            raise ValueError(f"racks must be >= 1, got {self.racks}")
        if self.hosts_per_rack < 1:
            raise ValueError(
                f"hosts_per_rack must be >= 1, got {self.hosts_per_rack}")
        if self.racks * self.hosts_per_rack < 2:
            raise ValueError("a fleet needs at least 2 hosts")
        if self.containers < 2:
            raise ValueError(f"containers must be >= 2, got {self.containers}")


class Fleet(ClusterBed):
    """A multi-rack cluster with a live, migratable workload."""

    def __init__(self, spec: Optional[FleetSpec] = None,
                 config: Optional[Config] = None):
        self.spec = spec = spec or FleetSpec()
        config = config or default_config()
        if spec.seed is not None:
            config = config.replace(seed=spec.seed)
        super().__init__(config)
        rack_map: Dict[str, List[str]] = {
            f"rack{r}": [f"r{r}h{h}" for h in range(spec.hosts_per_rack)]
            for r in range(spec.racks)
        }
        for hosts in rack_map.values():
            for name in hosts:
                self.add_server(name)
        self.topology = FatTreeTopology(
            self.sim, config, rack_map,
            oversubscription=spec.oversubscription).attach(self.network)
        self.world = MigrRdmaWorld(self)
        self.state = FleetState()
        for rack, hosts in rack_map.items():
            for name in hosts:
                self.state.add_host(name, rack, qp_quota=spec.qp_quota,
                                    memory_bytes=spec.host_memory_bytes)
        self.endpoints: List[PerftestEndpoint] = []
        self.pairs: List[Tuple[PerftestEndpoint, PerftestEndpoint]] = []
        self.kv_servers: list = []
        self.kv_clients: list = []
        if spec.kv_pairs:
            from repro.rnic import TenantSpec, install_qos

            install_qos(self.servers,
                        [TenantSpec("kv", max_qps=2 * spec.kv_pairs + 4)])
        self._build_workload()

    # ------------------------------------------------------------------
    # workload

    def _build_workload(self) -> None:
        """Paired endpoints: sender ``ct{2k}`` on host ``k mod n``,
        receiver ``ct{2k+1}`` offset a rack away (or one host over in a
        single-rack fleet) so steady-state traffic crosses the trunks."""
        spec = self.spec
        hosts = list(self.state.hosts)
        offset = spec.hosts_per_rack if spec.racks > 1 else 1
        for i in range(spec.containers):
            pair = i // 2
            if i % 2 == 0:
                host = hosts[pair % len(hosts)]
            else:
                host = hosts[(pair + offset) % len(hosts)]
            name = f"ct{i:03d}"
            server = self.server(host)
            container = server.create_container(name)
            endpoint = PerftestEndpoint(
                server, name=name, world=self.world, container=container,
                msg_size=spec.msg_size, depth=spec.depth, mode="write",
                verify_content=spec.verify_content, pace_s=spec.pace_s)
            endpoint.process.set_synthetic_heap(spec.heap_bytes,
                                                spec.heap_dirty_bps)
            self.endpoints.append(endpoint)
            self.state.add_container(
                name, host, qps=1,
                memory_bytes=spec.heap_bytes
                + endpoint.buffer_bytes_per_qp())
        for k in range(spec.containers // 2):
            self.pairs.append((self.endpoints[2 * k], self.endpoints[2 * k + 1]))
        if spec.kv_pairs:
            self._build_kv_workload()

    def _build_kv_workload(self) -> None:
        """KV server/client container pairs under tenant ``"kv"``: the
        server exports its hash table a rack away from its client, so KV
        GET READs cross the trunks like the perftest streams do — and
        both containers are registered in the state store, so drains and
        rebalances migrate live KV tables and their clients."""
        from repro.apps.kvstore import KvClient, KvServer

        spec = self.spec
        hosts = list(self.state.hosts)
        offset = spec.hosts_per_rack if spec.racks > 1 else 1
        for j in range(spec.kv_pairs):
            shost = hosts[(2 * j + 1) % len(hosts)]
            chost = hosts[(2 * j + 1 + offset) % len(hosts)]
            sname, cname = f"kv{j:03d}s", f"kv{j:03d}c"
            server = self.server(shost)
            kv = KvServer(server, name=sname, world=self.world,
                          container=server.create_container(sname),
                          n_buckets=64, value_cap=max(64, spec.kv_value_len),
                          depth=8, tenant="kv")
            cserver = self.server(chost)
            client = KvClient(cserver, kv, name=cname, world=self.world,
                              container=cserver.create_container(cname),
                              keyspace=[f"kv{j}-{i:03d}"
                                        for i in range(spec.kv_keyspace)],
                              value_len=spec.kv_value_len, depth=spec.kv_depth,
                              seed=self.config.seed, tenant="kv",
                              pace_s=spec.pace_s)
            self.kv_servers.append(kv)
            self.kv_clients.append(client)
            self.state.add_container(sname, shost, qps=1,
                                     memory_bytes=kv.layout.table_bytes)
            self.state.add_container(cname, chost, qps=1,
                                     memory_bytes=client._buf_bytes())
        self.endpoints.extend(self.kv_servers)
        self.endpoints.extend(self.kv_clients)

    def setup(self):
        """Generator: verbs resources + QP connections for every pair."""
        from repro.apps.kvstore import connect_kv

        for tx, rx in self.pairs:
            yield from tx.setup(qp_budget=1)
            yield from rx.setup(qp_budget=1)
            yield from connect_endpoints(tx, rx, qp_count=1)
        # An odd trailing container carries no RDMA traffic but still has
        # a process + heap, so it migrates like any other.
        if len(self.pairs) * 2 < self.spec.containers:
            yield from self.endpoints[len(self.pairs) * 2].setup(qp_budget=1)
        for kv, client in zip(self.kv_servers, self.kv_clients):
            yield from kv.setup(client_budget=1)
            kv.preload(client.keyspace, self.spec.kv_value_len)
            yield from client.setup()
            yield from connect_kv(kv, client)

    def start_traffic(self) -> None:
        """WRITE mode: only senders run loops (one-sided, no receiver)."""
        for tx, _rx in self.pairs:
            tx.start_as_sender()
        for kv in self.kv_servers:
            kv.start()
        for client in self.kv_clients:
            client.start()

    def quiesce(self):
        """Generator: stop senders, drain in-flight completions."""
        from repro.chaos.torture import quiesce
        result = yield from quiesce(self, self.endpoints)
        return result

    # ------------------------------------------------------------------
    # lookups

    def container(self, name: str) -> Container:
        """The live container object, wherever it currently lives."""
        return self.server(self.state.host_of(name)).containers[name]

    def __repr__(self) -> str:
        return (f"<Fleet racks={self.spec.racks} "
                f"hosts={len(self.state.hosts)} "
                f"containers={len(self.state.containers)}>")


def build_fleet(**kwargs) -> Fleet:
    """Convenience constructor: ``build_fleet(racks=2, containers=16)``."""
    return Fleet(FleetSpec(**kwargs))
