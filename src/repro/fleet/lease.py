"""Placement leases with fencing epochs — the fleet's split-brain guard.

Every tracked container's placement is backed by a **lease** in the
:class:`~repro.fleet.state.FleetState` store: ``(holder host, epoch,
granted_s, expires_s)``.  The epoch is a classic fencing token — it only
ever increases, and it increases exactly once per handover — so at any
simulated instant the history of a container's leases forms a chain of
non-overlapping windows with strictly increasing epochs.  That chain is
what the ``lease-fencing`` invariant (:mod:`repro.chaos.invariants`)
replays after a run to prove no split-brain was reachable: two hosts
serving the same container at once would need two overlapping windows or
a reused epoch, and the store can produce neither.

Three rules, enforced mechanically:

- a **destination only goes live after acquiring the lease** — the
  orchestrator's resume gate calls :meth:`LeaseGuard.acquire`, which
  performs the fenced :meth:`LeaseTable.transfer` (close the source's
  window, open the destination's at epoch+1);
- a **source that loses the lease must stop serving** — once the
  transfer lands, the source host is *fenced* for that container:
  :meth:`LeaseTable.fenced` answers True forever after, and the
  scheduler refuses fenced hosts as destinations (stale partial state);
- a **rerouted attempt releases its old reservation** — the supervisor
  rotating to an alternate destination drops the previous destination's
  pending reservation, so no epoch is ever promised to two hosts.
  Fencing is reserved for hosts where real state divergence exists: the
  old *holder* after a transfer (its memory image is stale the instant
  the destination goes live), or an explicit operator
  :meth:`LeaseTable.fence`.  A merely-abandoned reservation left nothing
  behind — the destination never went live — so the host stays eligible
  (the supervisor may well rotate back to it next attempt).

Leases are pure bookkeeping on the store: no timers, no scheduled
events, no RNG.  TTLs are evaluated lazily against the caller-provided
``now``, so installing the lease machinery leaves every fault-free
simulated timestamp bit-identical (same discipline as the failure
detector's zero-cost probes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["Lease", "LeaseError", "LeaseGuard", "LeaseTable"]


class LeaseError(Exception):
    """A lease operation that would break the fencing discipline."""


@dataclass
class Lease:
    """One placement lease: ``holder`` may serve ``container`` while the
    lease is valid; ``epoch`` is the fencing token."""

    container: str
    holder: str
    epoch: int
    granted_s: float
    expires_s: float = math.inf
    #: sim time the lease was closed (release/transfer); inf while open
    closed_s: float = math.inf

    def valid(self, now: float) -> bool:
        return self.closed_s == math.inf and now < self.expires_s


class LeaseTable:
    """The FleetState store's lease ledger for every tracked container."""

    def __init__(self):
        self._current: Dict[str, Lease] = {}
        self._epochs: Dict[str, int] = {}
        #: closed leases, in close order (the invariant replays these)
        self.history: List[Lease] = []
        #: container -> (host, reserved epoch): a migration in flight has
        #: promised the next epoch to this destination
        self._reservations: Dict[str, Tuple[str, int]] = {}
        #: container -> hosts that once held (or reserved) the container
        #: and were revoked — never eligible as destinations again without
        #: an explicit unfence (stale partial state may linger there)
        self._fenced: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # grant / renew / release

    def grant(self, container: str, holder: str, now: float,
              ttl_s: float = math.inf) -> Lease:
        """Open a fresh lease at the next epoch.  Refuses while another
        holder's lease is still valid — that is the split-brain."""
        current = self._current.get(container)
        if current is not None and current.valid(now) \
                and current.holder != holder:
            raise LeaseError(
                f"container {container!r} lease is held by "
                f"{current.holder!r} (epoch {current.epoch}) until "
                f"t={current.expires_s:.6f}; {holder!r} may not be granted")
        if current is not None and current.closed_s == math.inf:
            self._close(current, now)
        epoch = self._epochs.get(container, 0) + 1
        self._epochs[container] = epoch
        lease = Lease(container=container, holder=holder, epoch=epoch,
                      granted_s=now, expires_s=now + ttl_s)
        self._current[container] = lease
        return lease

    def renew(self, container: str, holder: str, now: float,
              ttl_s: float = math.inf) -> Lease:
        lease = self._require(container)
        if lease.holder != holder:
            raise LeaseError(f"{holder!r} cannot renew {container!r}: "
                             f"lease is held by {lease.holder!r}")
        lease.expires_s = now + ttl_s
        return lease

    def release(self, container: str, holder: str, now: float) -> None:
        lease = self._require(container)
        if lease.holder != holder:
            raise LeaseError(f"{holder!r} cannot release {container!r}: "
                             f"lease is held by {lease.holder!r}")
        self._close(lease, now)
        del self._current[container]

    def _close(self, lease: Lease, now: float) -> None:
        lease.closed_s = now
        lease.expires_s = min(lease.expires_s, now)
        self.history.append(lease)

    # ------------------------------------------------------------------
    # the fenced handover

    def reserve(self, container: str, host: str, now: float) -> int:
        """Promise the *next* epoch to ``host`` (the chosen destination).
        A fresh reservation replaces any previous one for a different
        host (the rerouted-job rule) and explicitly re-admits ``host``
        if it had been fenced — reserving is the store saying "this
        destination is clean to receive"."""
        self._require(container)
        previous = self._reservations.get(container)
        if previous is not None and previous[0] != host:
            self.release_reservation(container, previous[0], fence=False)
        self._fenced.get(container, set()).discard(host)
        epoch = self._epochs[container] + 1
        self._reservations[container] = (host, epoch)
        return epoch

    def reservation(self, container: str) -> Optional[str]:
        entry = self._reservations.get(container)
        return entry[0] if entry is not None else None

    def release_reservation(self, container: str, host: str,
                            fence: bool = False) -> None:
        """Drop ``host``'s pending reservation.  ``fence=True`` also bars
        the host (use when partial restore state may linger there)."""
        entry = self._reservations.get(container)
        if entry is None or entry[0] != host:
            return
        del self._reservations[container]
        if fence:
            self._fenced.setdefault(container, set()).add(host)

    def fence(self, container: str, host: str) -> None:
        """Bar ``host`` from serving or receiving ``container`` until an
        explicit :meth:`unfence` (operator mark, or a control plane that
        observed stale state there)."""
        self._fenced.setdefault(container, set()).add(host)

    def transfer(self, container: str, dest: str, now: float,
                 ttl_s: float = math.inf) -> Lease:
        """The go-live handover: atomically close the source's window,
        fence the source, and open the destination's lease at the
        reserved (strictly greater) epoch."""
        lease = self._require(container)
        reserved = self._reservations.pop(container, None)
        if reserved is not None and reserved[0] != dest:
            raise LeaseError(
                f"container {container!r} epoch {reserved[1]} is reserved "
                f"for {reserved[0]!r}; {dest!r} cannot acquire it")
        old_holder = lease.holder
        self._close(lease, now)
        self._fenced.setdefault(container, set()).add(old_holder)
        epoch = self._epochs[container] + 1
        self._epochs[container] = epoch
        fresh = Lease(container=container, holder=dest, epoch=epoch,
                      granted_s=now, expires_s=now + ttl_s)
        self._current[container] = fresh
        return fresh

    # ------------------------------------------------------------------
    # queries

    def _require(self, container: str) -> Lease:
        lease = self._current.get(container)
        if lease is None:
            raise LeaseError(f"container {container!r} has no lease")
        return lease

    def holder(self, container: str) -> Optional[str]:
        lease = self._current.get(container)
        return lease.holder if lease is not None else None

    def epoch(self, container: str) -> int:
        return self._epochs.get(container, 0)

    def current(self, container: str) -> Optional[Lease]:
        return self._current.get(container)

    def valid(self, container: str, now: float) -> bool:
        lease = self._current.get(container)
        return lease is not None and lease.valid(now)

    def fenced(self, container: str, host: str, now: float) -> bool:
        """May ``host`` serve (or receive) ``container``?  True means NO:
        the host was revoked for this container, or holds a lease that
        has expired without renewal (a source cut off by a partition)."""
        if host in self._fenced.get(container, ()):
            return True
        lease = self._current.get(container)
        if lease is not None and lease.holder == host \
                and not lease.valid(now):
            return True
        return False

    def unfence(self, container: str, host: str) -> None:
        """Operator override: re-admit a fenced host (stale state purged)."""
        self._fenced.get(container, set()).discard(host)

    def leases(self, container: str) -> List[Lease]:
        """Full window chain for one container, in grant order."""
        chain = [l for l in self.history if l.container == container]
        current = self._current.get(container)
        if current is not None and current.closed_s == math.inf:
            chain.append(current)
        return sorted(chain, key=lambda l: l.epoch)

    def __len__(self) -> int:
        return len(self._current)

    def __repr__(self) -> str:
        return (f"<LeaseTable {len(self._current)} leases "
                f"{len(self._reservations)} reservations "
                f"{len(self.history)} closed>")


class LeaseGuard:
    """One migration attempt's handle on the lease table.

    Built by the scheduler at launch time and threaded through the
    supervisor into :class:`~repro.core.orchestrator.LiveMigration`,
    which calls :meth:`acquire` as its resume gate.  All methods are
    synchronous bookkeeping — no simulated time.
    """

    def __init__(self, table: LeaseTable, container: str, source: str):
        self.table = table
        self.container = container
        self.source = source

    def prepare(self, dest: str, now: float) -> int:
        """Reserve the next epoch for ``dest`` (called per attempt; a
        reroute to a new destination releases + fences the old one)."""
        return self.table.reserve(self.container, dest, now)

    def acquire(self, dest: str, now: float):
        """The destination go-live gate: fenced epoch transfer."""
        return self.table.transfer(self.container, dest, now)

    def abandon(self, now: float) -> None:
        """The attempt is over without a go-live: drop any pending
        reservation.  The destination never served, so it is not fenced
        — a requeued job may legitimately land there later."""
        host = self.table.reservation(self.container)
        if host is not None:
            self.table.release_reservation(self.container, host, fence=False)
