"""The scheduler journal: crash-recoverable drain progress.

Same discipline as the per-migration
:class:`~repro.resilience.PhaseJournal` (PR 5), one level up: where the
phase journal lets one migration's transaction roll back or forward
after a failure, the scheduler journal lets the *drain* resume after the
scheduler itself dies.  Every job moves through exactly three boundaries
— ``planned`` → ``launched`` → ``settled`` — and each transition is
recorded **before** the side effect it describes becomes visible, so a
crash between any two steps leaves the journal describing a recoverable
state:

- *planned, not launched* — nothing has happened; the recovery
  scheduler re-queues the job,
- *launched, not settled* — a supervisor process is (or was) running;
  the journal keeps the live process handle, and recovery **re-adopts**
  it instead of relaunching — that is the no-double-migration rule.
  If the supervisor already finished while the scheduler was down, the
  recovery scheduler settles it from the recorded handle — that is the
  no-orphaned-container rule,
- *settled* — the outcome is in the report; recovery skips it.

The journal lives in the FleetState store's failure domain (the same
logically-centralized, durable store that backs leases), not in the
scheduler process — which is exactly why a scheduler crash cannot lose
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["JournalEntry", "SchedulerJournal"]

PLANNED = "planned"
LAUNCHED = "launched"
SETTLED = "settled"


@dataclass
class JournalEntry:
    """One job's progress record."""

    job: object  # the MigrationJob, kept whole so recovery re-plans nothing
    status: str = PLANNED
    dest: str = ""
    #: live supervisor process handle (recovery re-adopts it)
    proc: object = None
    #: the job's LeaseGuard (recovery keeps fencing state consistent)
    guard: object = None
    t_planned: float = 0.0
    t_launched: float = 0.0
    t_settled: float = 0.0
    completed: bool = False

    @property
    def container(self) -> str:
        return self.job.container


class SchedulerJournal:
    """Ordered per-container journal of one drain plan's execution."""

    def __init__(self):
        self.entries: Dict[str, JournalEntry] = {}
        #: append-only transition log, for post-mortems and tests
        self.log: List[tuple] = []
        #: drain start time, preserved across scheduler incarnations so
        #: the final FleetReport window covers the whole drain
        self.t_start: Optional[float] = None
        #: per-migration reports accumulate here (not in the scheduler)
        #: so invariants see every attempt regardless of which scheduler
        #: incarnation settled it
        self.migration_reports: List[object] = []
        self.crashes = 0

    # ------------------------------------------------------------------
    # transitions

    def record_planned(self, job, now: float) -> JournalEntry:
        """Idempotent: re-planning after recovery finds the entry."""
        entry = self.entries.get(job.container)
        if entry is not None:
            return entry
        entry = JournalEntry(job=job, t_planned=now)
        self.entries[job.container] = entry
        self.log.append((PLANNED, job.container, now))
        return entry

    def record_launched(self, container: str, dest: str, proc, guard,
                        now: float) -> None:
        entry = self._require(container)
        if entry.status == SETTLED:
            raise RuntimeError(f"job {container!r} already settled; "
                               f"a relaunch would double-migrate")
        entry.status = LAUNCHED
        entry.dest = dest
        entry.proc = proc
        entry.guard = guard
        entry.t_launched = now
        self.log.append((LAUNCHED, container, now))

    def record_settled(self, container: str, completed: bool,
                       now: float) -> None:
        entry = self._require(container)
        entry.status = SETTLED
        entry.completed = completed
        entry.t_settled = now
        self.log.append((SETTLED, container, now))

    def record_requeued(self, container: str, now: float) -> None:
        """A postponed job goes back to *planned* (new launch, new
        attempt budget) — distinct from settle, which is terminal."""
        entry = self._require(container)
        entry.status = PLANNED
        entry.proc = None
        self.log.append(("requeued", container, now))

    def note_crash(self, now: float) -> None:
        self.crashes += 1
        self.log.append(("crash", "", now))

    def _require(self, container: str) -> JournalEntry:
        entry = self.entries.get(container)
        if entry is None:
            raise LookupError(f"no journal entry for {container!r}")
        return entry

    # ------------------------------------------------------------------
    # recovery queries

    def unlaunched(self) -> List[JournalEntry]:
        """Planned-but-never-launched entries, in plan order."""
        return [e for e in self.entries.values() if e.status == PLANNED]

    def inflight(self) -> List[JournalEntry]:
        """Launched-but-unsettled entries (live or finished supervisors a
        crashed scheduler abandoned), in launch order."""
        return sorted((e for e in self.entries.values()
                       if e.status == LAUNCHED),
                      key=lambda e: e.t_launched)

    def settled(self) -> List[JournalEntry]:
        return [e for e in self.entries.values() if e.status == SETTLED]

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        counts = {PLANNED: 0, LAUNCHED: 0, SETTLED: 0}
        for entry in self.entries.values():
            counts[entry.status] += 1
        return (f"<SchedulerJournal planned={counts[PLANNED]} "
                f"launched={counts[LAUNCHED]} settled={counts[SETTLED]} "
                f"crashes={self.crashes}>")
