"""The fleet migration scheduler: policies, admission control, placement.

Turns a fleet *intent* — drain this host, drain this rack, rebalance,
evict these containers — into a plan of :class:`MigrationJob`\\ s, then
executes the plan as a rolling wave of
:class:`~repro.resilience.MigrationSupervisor` runs under admission
control.  Nothing here migrates anything itself; every actual move is
the paper's per-migration state machine, retried and rerouted by the
supervisor.  The scheduler decides only *when* each job may start and
*where* it should land.

Admission control (:class:`AdmissionLimits`) bounds concurrent
migrations fleet-wide, per host, per rack, and per ToR trunk — the knob
the concurrency sweep in ``repro.experiments fleet`` turns.  Placement
policies (``pack`` / ``spread`` / ``least-loaded``) rank candidate hosts
with deterministic tie-breaks, so the same seed produces the same
:class:`~repro.fleet.report.FleetReport` digest at any ``--jobs``
setting.

Determinism contract: the poll loop inspects state in insertion order,
ranks candidates with total-order keys, and takes every timestamp from
the simulator — no wall-clock, no unseeded randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.resilience import MigrationSupervisor

from .journal import SchedulerJournal
from .lease import LeaseGuard
from .report import FleetReport, MigrationOutcome

__all__ = ["AdmissionLimits", "MigrationJob", "MigrationScheduler",
           "PLACEMENT_POLICIES", "SCHEDULING_POLICIES",
           "drain_with_recovery"]

#: scheduler poll interval: reap finished migrations, admit new ones
POLL_S = 200e-6

PLACEMENT_POLICIES = ("pack", "spread", "least-loaded")
SCHEDULING_POLICIES = ("drain", "rebalance", "evict")


@dataclass
class AdmissionLimits:
    """Concurrency caps the scheduler enforces at admission time."""

    #: simultaneous migrations fleet-wide
    fleet: int = 4
    #: simultaneous migrations touching one host (as source or dest)
    per_host: int = 2
    #: simultaneous migrations touching one rack (source- or dest-side)
    per_rack: int = 8
    #: simultaneous cross-rack migrations using one rack's trunk
    per_uplink: int = 8

    def __post_init__(self):
        for name in ("fleet", "per_host", "per_rack", "per_uplink"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"AdmissionLimits.{name} must be >= 1, "
                                 f"got {value}")


@dataclass
class MigrationJob:
    """One planned move; ``dest`` is chosen at admission time."""

    container: str
    source: str
    #: hosts never eligible as destination (e.g. every host being drained)
    exclude: Tuple[str, ...] = ()
    dest: str = ""
    t_admitted: float = 0.0
    #: postponed jobs (PrecopyDiverged) are not admitted before this time
    not_before: float = 0.0
    #: how many times the scheduler has requeued this job with backoff
    requeues: int = 0


class MigrationScheduler:
    """Plans and executes fleet migration policies over one fleet."""

    def __init__(self, fleet, limits: Optional[AdmissionLimits] = None,
                 placement: str = "least-loaded", budget: int = 3,
                 backoff_s: float = 2e-3, chaos=None,
                 requeue_backoff_s: float = 10e-3, max_requeues: int = 2):
        if placement not in PLACEMENT_POLICIES:
            raise ValueError(f"unknown placement policy {placement!r}; "
                             f"choose from {PLACEMENT_POLICIES}")
        self.fleet = fleet
        self.state = fleet.state
        self.world = fleet.world
        self.sim = fleet.sim
        self.limits = limits or AdmissionLimits()
        self.placement = placement
        self.budget = budget
        self.backoff_s = backoff_s
        #: scheduler-level requeue backoff for postponed (PrecopyDiverged)
        #: jobs — deterministic doubling, no RNG
        self.requeue_backoff_s = requeue_backoff_s
        self.max_requeues = max_requeues
        #: optional FaultPlan: armed on every attempt (and its RNG seeds
        #: the supervisor's backoff jitter), same contract as torture runs
        self.chaos = chaos
        #: raw per-migration reports, for invariants and post-mortems
        #: (aliased to the journal's list once execute() runs, so reports
        #: survive scheduler crashes)
        self.migration_reports: List[object] = []
        self.report: Optional[FleetReport] = None
        self.journal: Optional[SchedulerJournal] = None
        #: set when a SchedulerCrash chaos fault killed this incarnation
        self.crashed = False
        self.crash_event = None
        self._policy = ""
        self._target = ""
        self._host_index = {name: i for i, name in enumerate(self.state.hosts)}

    # ------------------------------------------------------------------
    # planning: intent -> jobs

    def plan(self, policy: str, target: str = "") -> List[MigrationJob]:
        """Dispatch on policy name (the CLI surface)."""
        if policy not in SCHEDULING_POLICIES:
            raise ValueError(f"unknown scheduling policy {policy!r}; "
                             f"choose from {SCHEDULING_POLICIES}")
        self._policy, self._target = policy, target
        if policy == "drain":
            if target in self.state.hosts:
                return self.plan_drain_host(target)
            if target in self.state.racks():
                return self.plan_drain_rack(target)
            raise LookupError(f"drain target {target!r} is neither a host "
                              f"nor a rack")
        if policy == "rebalance":
            return self.plan_rebalance()
        targets = [name for name in target.split(",") if name]
        if not targets:
            raise ValueError("evict needs a comma-separated container list")
        return self.plan_evict(targets)

    def plan_drain_host(self, host: str) -> List[MigrationJob]:
        """Move everything off ``host``.  Idempotent: draining an empty
        (or already-drained) host plans zero jobs."""
        self.state.mark_draining(host)
        self._policy = self._policy or "drain"
        self._target = self._target or host
        return [MigrationJob(container=name, source=host, exclude=(host,))
                for name in self.state.containers_on(host)]

    def plan_drain_rack(self, rack: str) -> List[MigrationJob]:
        """Rolling drain of a whole rack: every host marked draining up
        front (so nothing lands back inside), jobs in host order."""
        hosts = tuple(self.state.hosts_in(rack))
        for host in hosts:
            self.state.mark_draining(host)
        self._policy = self._policy or "drain"
        self._target = self._target or rack
        jobs: List[MigrationJob] = []
        for host in hosts:
            jobs.extend(MigrationJob(container=name, source=host, exclude=hosts)
                        for name in self.state.containers_on(host))
        return jobs

    def plan_rebalance(self) -> List[MigrationJob]:
        """Move containers off hosts loaded above the ceiling-mean; the
        placement policy picks the receivers at admission time."""
        self._policy = self._policy or "rebalance"
        hosts = list(self.state.hosts)
        total = sum(self.state.load(host) for host in hosts)
        mean = -(-total // len(hosts))  # ceil
        jobs: List[MigrationJob] = []
        for host in hosts:
            surplus = self.state.load(host) - mean
            if surplus <= 0:
                continue
            for name in self.state.containers_on(host)[:surplus]:
                jobs.append(MigrationJob(container=name, source=host,
                                         exclude=(host,)))
        return jobs

    def plan_evict(self, containers: Sequence[str]) -> List[MigrationJob]:
        """Targeted evictions: move each named container off its host."""
        self._policy = self._policy or "evict"
        self._target = self._target or ",".join(containers)
        jobs = []
        for name in containers:
            source = self.state.host_of(name)
            jobs.append(MigrationJob(container=name, source=source,
                                     exclude=(source,)))
        return jobs

    # ------------------------------------------------------------------
    # admission control

    def _host_touch(self, active, host: str) -> int:
        return sum(1 for job, _ in active.values()
                   if job.source == host or job.dest == host)

    def _rack_touch(self, active, rack: str) -> int:
        rack_of = self.state.rack_of
        return sum(1 for job, _ in active.values()
                   if rack_of(job.source) == rack or rack_of(job.dest) == rack)

    def _trunk_load(self, active, rack: str) -> int:
        rack_of = self.state.rack_of
        count = 0
        for job, _ in active.values():
            src_rack, dst_rack = rack_of(job.source), rack_of(job.dest)
            if src_rack != dst_rack and rack in (src_rack, dst_rack):
                count += 1
        return count

    def _source_admissible(self, active, job: MigrationJob) -> bool:
        if len(active) >= self.limits.fleet:
            return False
        if self._host_touch(active, job.source) >= self.limits.per_host:
            return False
        if (self._rack_touch(active, self.state.rack_of(job.source))
                >= self.limits.per_rack):
            return False
        return True

    def _dest_admissible(self, active, dest: str, source: str,
                         container: Optional[str] = None) -> bool:
        # Health gates first: never send a container to a host the
        # control plane distrusts (operator/partition suspect mark), to a
        # host whose daemon is known down, or to a host that is
        # lease-fenced for this container (a revoked former holder may
        # hold stale partial state).
        if dest in self.state.suspected:
            return False
        if self.world.control.daemon_down(dest):
            return False
        if container is not None \
                and self.state.leases.fenced(container, dest, self.sim.now):
            return False
        if self._host_touch(active, dest) >= self.limits.per_host:
            return False
        src_rack = self.state.rack_of(source)
        dst_rack = self.state.rack_of(dest)
        if self._rack_touch(active, dst_rack) >= self.limits.per_rack:
            return False
        if src_rack != dst_rack:
            if self._trunk_load(active, src_rack) >= self.limits.per_uplink:
                return False
            if self._trunk_load(active, dst_rack) >= self.limits.per_uplink:
                return False
        return True

    # ------------------------------------------------------------------
    # placement

    def _rank_key(self, host: str):
        index = self._host_index[host]
        if self.placement == "pack":
            return (-self.state.load(host), index)
        if self.placement == "spread":
            return (self.state.load(host), index)
        return (self.state.qp_usage(host), self.state.load(host), index)

    def _pick_dest(self, active, job: MigrationJob):
        """Best destination under the placement policy plus up to two
        alternates for the supervisor to rotate through on retry."""
        candidates = [
            host for host in self.state.candidates(job.container,
                                                   exclude=job.exclude)
            if host != job.source and self._dest_admissible(
                active, host, job.source, container=job.container)
        ]
        if not candidates:
            return None, ()
        ranked = sorted(candidates, key=self._rank_key)
        return ranked[0], tuple(ranked[1:3])

    # ------------------------------------------------------------------
    # execution

    def execute(self, jobs: Sequence[MigrationJob],
                journal: Optional[SchedulerJournal] = None,
                report: Optional[FleetReport] = None):
        """Generator: run the plan to completion; returns the
        :class:`FleetReport`.  Spawn on the fleet simulator via
        ``fleet.run(scheduler.execute(jobs))``.

        Every job's progress is journalled (planned → launched →
        settled).  Pass the previous incarnation's ``journal`` and
        ``report`` to *recover* a crashed drain: settled jobs are
        skipped, in-flight supervisor processes are re-adopted (never
        relaunched — the no-double-migration rule), and unlaunched jobs
        queue as normal.  A :class:`~repro.chaos.SchedulerCrash` fault in
        ``self.chaos`` kills this incarnation at its scheduled time:
        ``execute`` returns early with ``self.crashed`` set and all
        in-memory state abandoned — only the journal survives
        (:func:`drain_with_recovery` wraps the restart loop).
        """
        if report is None:
            report = FleetReport(policy=self._policy, target=self._target,
                                 placement=self.placement)
        self.report = report
        if journal is None:
            journal = SchedulerJournal()
        self.journal = journal
        self.migration_reports = journal.migration_reports
        if journal.t_start is None:
            journal.t_start = self.sim.now
        for job in jobs:
            journal.record_planned(job, self.sim.now)
        # Recovery: re-adopt in-flight supervisors, requeue the rest.
        pending: List[MigrationJob] = [e.job for e in journal.unlaunched()]
        active: Dict[str, Tuple[MigrationJob, object]] = {
            e.container: (e.job, e.proc) for e in journal.inflight()}
        topology = getattr(self.fleet, "topology", None)
        while pending or active:
            if self.chaos is not None:
                crash = self.chaos.scheduler_crash_due(self.sim.now)
                if crash is not None:
                    # This incarnation dies here: pending/active are
                    # abandoned (supervisor processes keep running —
                    # they are independent sim processes), the journal
                    # is the only survivor.
                    self.crashed = True
                    self.crash_event = crash
                    journal.note_crash(self.sim.now)
                    return report
            # Reap finished migrations (insertion order = admission order).
            for name in [n for n, (_, proc) in active.items()
                         if not proc.is_alive]:
                job, proc = active.pop(name)
                if self._settle(job, proc, report):
                    pending.append(job)  # postponed: requeued with backoff
            # Admit everything the limits allow, in plan order.
            admitted = True
            while admitted and pending:
                admitted = False
                for job in pending:
                    if job.container in active:
                        continue  # same container queued twice: wait
                    if self.sim.now < job.not_before:
                        continue  # requeued job still backing off
                    if not self._source_admissible(active, job):
                        continue
                    dest, alternates = self._pick_dest(active, job)
                    if dest is None:
                        continue
                    pending.remove(job)
                    self._launch(job, dest, alternates, active)
                    admitted = True
                    break
            report.observe_concurrency(len(active))
            report.observe_links(topology)
            if pending and not active \
                    and all(self.sim.now >= job.not_before for job in pending):
                # Nothing running and nothing admissible: no future event
                # can unblock the plan, so fail the remainder explicitly
                # rather than spinning forever.  (Jobs merely backing off
                # keep the loop alive instead.)
                for job in pending:
                    journal.record_settled(job.container, False, self.sim.now)
                    report.add(MigrationOutcome(
                        container=job.container, source=job.source, dest="",
                        completed=False, attempts=0, blackout_s=None,
                        t_admitted=self.sim.now, t_done=self.sim.now,
                        failure="no feasible destination"))
                pending.clear()
                break
            if pending or active:
                yield self.sim.timeout(POLL_S)
        report.finalize(topology, journal.t_start, self.sim.now)
        return report

    def _launch(self, job: MigrationJob, dest: str,
                alternates: Tuple[str, ...], active) -> None:
        job.dest = dest
        job.t_admitted = self.sim.now
        container = self.fleet.server(job.source).containers[job.container]
        guard = LeaseGuard(self.state.leases, job.container, job.source)
        supervisor = MigrationSupervisor(
            self.world, container, self.fleet.server(dest),
            alternates=[self.fleet.server(name) for name in alternates],
            budget=self.budget, backoff_s=self.backoff_s, chaos=self.chaos)
        proc = self.sim.spawn(
            supervisor.run(migration_factory=self._fenced_factory(guard)),
            name=f"fleet:{job.container}")
        active[job.container] = (job, proc)
        self.journal.record_launched(job.container, dest, proc, guard,
                                     self.sim.now)

    def _fenced_factory(self, guard: LeaseGuard):
        """Per-attempt migration factory: reserves the destination's lease
        epoch (releasing the previous reservation on a reroute) and wires
        the guard into the orchestrator's resume gate."""
        from repro.core.orchestrator import LiveMigration

        world = self.world
        container = self.fleet.server(guard.source).containers[guard.container]

        def factory(dest_server):
            guard.prepare(dest_server.name, self.sim.now)
            migration = LiveMigration(world, container, dest_server)
            migration.lease_guard = guard
            return migration

        return factory

    def _settle(self, job: MigrationJob, proc,
                report: FleetReport) -> bool:
        """Fold one finished supervisor run into fleet state + report.
        Returns True when the job was *requeued* (postponed migration)
        rather than settled."""
        journal = self.journal
        entry = journal.entries.get(job.container)
        guard = entry.guard if entry is not None else None
        if not proc.ok:
            # The supervisor itself crashed (not a rolled-back migration —
            # those return a report).  The container stays where it was;
            # sim-health will flag the failed process.
            if guard is not None:
                guard.abandon(self.sim.now)
            journal.record_settled(job.container, False, self.sim.now)
            report.add(MigrationOutcome(
                container=job.container, source=job.source, dest=job.dest,
                completed=False, attempts=0, blackout_s=None,
                t_admitted=job.t_admitted, t_done=self.sim.now,
                failure=f"supervisor crashed: {proc.exception!r}"))
            return False
        mreport = proc.value
        self.migration_reports.append(mreport)
        completed = not mreport.aborted
        if completed:
            self.state.place(job.container, mreport.dest_name)
        elif mreport.failure and "PrecopyDiverged" in mreport.failure \
                and job.requeues < self.max_requeues:
            # The degradation ladder's last rung: the migration is
            # hopeless *right now* (hot writer, degraded uplink), so back
            # off at the scheduler instead of burning supervisor retries.
            job.requeues += 1
            job.not_before = self.sim.now \
                + self.requeue_backoff_s * (2.0 ** (job.requeues - 1))
            if guard is not None:
                guard.abandon(self.sim.now)
            journal.record_requeued(job.container, self.sim.now)
            return True
        if not completed and guard is not None:
            guard.abandon(self.sim.now)
        journal.record_settled(job.container, completed, self.sim.now)
        report.add(MigrationOutcome(
            container=job.container, source=job.source,
            dest=mreport.dest_name if completed else job.dest,
            completed=completed,
            attempts=len(mreport.attempts) or 1,
            blackout_s=mreport.blackout_s,
            t_admitted=job.t_admitted, t_done=self.sim.now,
            failure=mreport.failure))
        return False


def drain_with_recovery(scheduler: MigrationScheduler,
                        jobs: Sequence[MigrationJob],
                        journal: Optional[SchedulerJournal] = None):
    """Generator: run a drain to completion across scheduler crashes.

    Runs ``scheduler.execute(jobs)``; whenever the incarnation dies to a
    :class:`~repro.chaos.SchedulerCrash` fault, waits out the crash's
    ``down_s``, builds a replacement scheduler with the same policy
    knobs, and resumes from the journal.  With no crash faults armed
    this is exactly one ``execute`` call — bit-identical to calling it
    directly.  Returns the final :class:`FleetReport`; the journal
    (``scheduler.journal`` of any incarnation) holds every per-migration
    report and the full transition log.
    """
    if journal is None:
        journal = SchedulerJournal()
    report = yield from scheduler.execute(jobs, journal=journal)
    while scheduler.crashed:
        crash = scheduler.crash_event
        yield scheduler.sim.timeout(crash.down_s)
        replacement = MigrationScheduler(
            scheduler.fleet, limits=scheduler.limits,
            placement=scheduler.placement, budget=scheduler.budget,
            backoff_s=scheduler.backoff_s, chaos=scheduler.chaos,
            requeue_backoff_s=scheduler.requeue_backoff_s,
            max_requeues=scheduler.max_requeues)
        replacement._policy = scheduler._policy
        replacement._target = scheduler._target
        report = yield from replacement.execute([], journal=journal,
                                                report=report)
        scheduler = replacement
    return report
