"""Fleet-level reporting: per-migration outcomes + aggregate distributions.

One :class:`FleetReport` per scheduler execution, built through
:mod:`repro.obs` primitives: the aggregate blackout distribution is a
real :class:`~repro.obs.metrics.Histogram` (exact percentiles), per-trunk
utilisation comes from the topology's ``Port`` byte counters, and peak
trunk backlog is sampled at every scheduler poll — which is what makes
uplink contention *visible* in the report rather than just slower.

The report digests deterministically (container/host names, simulated
timestamps — never wall-clock, never ``container_id`` values, which
depend on how many testbeds this interpreter built before) so same-seed
runs compare bit-identical across ``--jobs`` settings.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import Histogram

__all__ = ["FleetReport", "MigrationOutcome"]


@dataclass
class MigrationOutcome:
    """One scheduled migration, as the fleet saw it."""

    container: str
    source: str
    dest: str
    completed: bool
    attempts: int
    blackout_s: Optional[float]
    t_admitted: float
    t_done: float
    failure: Optional[str] = None

    def line(self) -> str:
        """Canonical digest line (repr floats: exact, no rounding)."""
        return "|".join([
            self.container, self.source, self.dest,
            "ok" if self.completed else "FAILED",
            str(self.attempts),
            repr(self.blackout_s), repr(self.t_admitted), repr(self.t_done),
            self.failure or "-",
        ])


class FleetReport:
    """Everything a fleet operation reports: outcomes + aggregates."""

    def __init__(self, policy: str = "", target: str = "",
                 placement: str = ""):
        self.policy = policy
        self.target = target
        self.placement = placement
        self.outcomes: List[MigrationOutcome] = []
        self.blackouts = Histogram("fleet.blackout_s")
        self.t_start = 0.0
        self.t_end = 0.0
        #: highest number of simultaneously-active migrations observed
        self.max_concurrency = 0
        #: peak queued bytes per trunk, sampled at scheduler polls
        self.link_peak_backlog: Dict[str, int] = {}
        #: final per-trunk stats (bytes, mean utilisation) from the topology
        self.link_stats: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    # accumulation (scheduler-facing)

    def add(self, outcome: MigrationOutcome) -> None:
        self.outcomes.append(outcome)
        if outcome.blackout_s is not None:
            self.blackouts.observe(outcome.blackout_s)

    def observe_concurrency(self, active: int) -> None:
        if active > self.max_concurrency:
            self.max_concurrency = active

    def observe_links(self, topology) -> None:
        """Sample trunk backlog (scheduler calls this every poll)."""
        if topology is None:
            return
        for name, port in topology.trunk_ports().items():
            pending = port.pending_bytes
            if pending > self.link_peak_backlog.get(name, 0):
                self.link_peak_backlog[name] = pending

    def finalize(self, topology, t_start: float, t_end: float) -> None:
        self.t_start = t_start
        self.t_end = t_end
        if topology is not None:
            self.link_stats = topology.link_stats(now=t_end)

    # ------------------------------------------------------------------
    # aggregates

    @property
    def migrations(self) -> int:
        return len(self.outcomes)

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.completed)

    @property
    def failed(self) -> int:
        return self.migrations - self.completed

    @property
    def drain_completion_s(self) -> float:
        """First admission poll to last migration settled."""
        return self.t_end - self.t_start

    def blackout_summary(self) -> Dict[str, float]:
        """p50/p99/max of per-migration service blackout (seconds)."""
        if self.blackouts.count == 0:
            return {"count": 0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": self.blackouts.count,
            "p50": self.blackouts.percentile(50),
            "p99": self.blackouts.percentile(99),
            "max": self.blackouts.max,
        }

    # ------------------------------------------------------------------
    # digest + rendering

    def digest_input(self) -> str:
        lines = [f"fleet-report policy={self.policy} target={self.target} "
                 f"placement={self.placement}",
                 f"window={self.t_start!r}..{self.t_end!r} "
                 f"max_concurrency={self.max_concurrency}"]
        lines.extend(o.line() for o in self.outcomes)
        for name in sorted(self.link_stats):
            stats = self.link_stats[name]
            lines.append(f"link {name} bytes={stats['bytes']} "
                         f"peak_backlog={self.link_peak_backlog.get(name, 0)}")
        return "\n".join(lines)

    def digest(self) -> str:
        return hashlib.sha256(self.digest_input().encode()).hexdigest()

    def render(self) -> str:
        """Human-readable summary table for the CLI/examples."""
        blackout = self.blackout_summary()
        lines = [
            f"FleetReport: policy={self.policy} target={self.target} "
            f"placement={self.placement}",
            f"  migrations: {self.migrations} ({self.completed} completed, "
            f"{self.failed} failed), peak concurrency {self.max_concurrency}",
            f"  drain completion: {self.drain_completion_s * 1e3:.3f} ms",
            f"  blackout: n={blackout['count']} p50={blackout['p50'] * 1e3:.3f} ms "
            f"p99={blackout['p99'] * 1e3:.3f} ms max={blackout['max'] * 1e3:.3f} ms",
        ]
        for name in sorted(self.link_stats):
            stats = self.link_stats[name]
            lines.append(
                f"  trunk {name:<12} {stats['bytes'] / 1e6:10.2f} MB  "
                f"util {stats['utilization'] * 100:6.2f}%  "
                f"peak backlog {self.link_peak_backlog.get(name, 0) / 1e3:8.1f} KB")
        for o in self.outcomes:
            blk = "-" if o.blackout_s is None else f"{o.blackout_s * 1e3:.3f} ms"
            status = "ok" if o.completed else f"FAILED ({o.failure})"
            lines.append(f"    {o.container:<8} {o.source} -> {o.dest:<8} "
                         f"attempts={o.attempts} blackout={blk} {status}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<FleetReport {self.policy}:{self.target} "
                f"migrations={self.migrations} "
                f"completed={self.completed}>")
