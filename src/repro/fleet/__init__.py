"""repro.fleet — cluster-scale concurrent migration orchestration.

The layer above the paper's per-migration state machine: tens of hosts
in racks behind oversubscribed fat-tree trunks
(:class:`~repro.fabric.FatTreeTopology`), a state store of placements
and capacity (:class:`FleetState`), a policy-driven scheduler
(:class:`MigrationScheduler` — rolling drains, rebalancing, evictions —
under :class:`AdmissionLimits`), and aggregate reporting
(:class:`FleetReport`: blackout distribution, drain completion time,
per-trunk utilisation).

Quickstart::

    from repro.fleet import AdmissionLimits, MigrationScheduler, build_fleet

    fleet = build_fleet(racks=2, hosts_per_rack=4, containers=16, seed=7)
    fleet.run(fleet.setup())
    fleet.start_traffic()
    sched = MigrationScheduler(fleet, limits=AdmissionLimits(fleet=4))
    report = fleet.run(sched.execute(sched.plan("drain", "rack0")))
    print(report.render())

See DESIGN.md §13 and ``examples/fleet_drain.py``.
"""

from repro.fleet.builder import Fleet, FleetSpec, build_fleet
from repro.fleet.journal import JournalEntry, SchedulerJournal
from repro.fleet.lease import Lease, LeaseError, LeaseGuard, LeaseTable
from repro.fleet.report import FleetReport, MigrationOutcome
from repro.fleet.scheduler import (
    AdmissionLimits,
    MigrationJob,
    MigrationScheduler,
    PLACEMENT_POLICIES,
    SCHEDULING_POLICIES,
    drain_with_recovery,
)
from repro.fleet.state import ContainerInfo, FleetState, HostInfo

__all__ = [
    "AdmissionLimits", "ContainerInfo", "Fleet", "FleetReport", "FleetSpec",
    "FleetState", "HostInfo", "JournalEntry", "Lease", "LeaseError",
    "LeaseGuard", "LeaseTable", "MigrationJob", "MigrationOutcome",
    "MigrationScheduler", "PLACEMENT_POLICIES", "SCHEDULING_POLICIES",
    "SchedulerJournal", "build_fleet", "drain_with_recovery",
]
