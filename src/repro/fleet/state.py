"""Fleet state store: hosts, containers, placements, capacity.

The authoritative "where does everything live" map the migration
scheduler plans against.  It is deliberately *not* the simulation — the
live truth is which :class:`~repro.cluster.Server` actually holds each
:class:`~repro.cluster.Container` — and the ``fleet-placement`` invariant
(:mod:`repro.chaos.invariants`) checks the two views agree after every
drain: every tracked container has exactly one live placement, and it is
the one the store believes.

Capacity is tracked per host as a QP quota and a memory budget; placement
policies only consider hosts where the candidate container ``fits()``.
All iteration orders are insertion order (hosts) or sorted (container
queries), so scheduling decisions are bit-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from .lease import LeaseTable

__all__ = ["ContainerInfo", "FleetState", "HostInfo"]


@dataclass
class HostInfo:
    """Capacity record for one host."""

    name: str
    rack: str
    qp_quota: int = 256
    memory_bytes: int = 4 * 1024 ** 3


@dataclass
class ContainerInfo:
    """Resource demand record for one container."""

    name: str
    qps: int = 1
    memory_bytes: int = 0


class FleetState:
    """Hosts + containers + the placement map, with capacity accounting."""

    def __init__(self):
        self.hosts: Dict[str, HostInfo] = {}
        self.containers: Dict[str, ContainerInfo] = {}
        self.placements: Dict[str, str] = {}
        self.draining: Set[str] = set()
        #: placement leases with fencing epochs (DESIGN.md §15): every
        #: tracked container's placement is backed by a lease here, and
        #: migrations hand placements over via fenced epoch transfers
        self.leases = LeaseTable()
        #: hosts the control plane currently distrusts (force-marked by
        #: an operator or a partition report); never picked as
        #: destinations until the mark clears
        self.suspected: Set[str] = set()

    # ------------------------------------------------------------------
    # registration

    def add_host(self, name: str, rack: str, qp_quota: int = 256,
                 memory_bytes: int = 4 * 1024 ** 3) -> HostInfo:
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        info = HostInfo(name=name, rack=rack, qp_quota=qp_quota,
                        memory_bytes=memory_bytes)
        self.hosts[name] = info
        return info

    def add_container(self, name: str, host: str, qps: int = 1,
                      memory_bytes: int = 0) -> ContainerInfo:
        if name in self.containers:
            raise ValueError(f"duplicate container {name!r}")
        self._require_host(host)
        info = ContainerInfo(name=name, qps=qps, memory_bytes=memory_bytes)
        self.containers[name] = info
        self.placements[name] = host
        # Initial placements are leased at epoch 1 from t=0 (registration
        # happens before the simulation runs; pure bookkeeping, no events).
        self.leases.grant(name, host, now=0.0)
        return info

    def _require_host(self, name: str) -> HostInfo:
        try:
            return self.hosts[name]
        except KeyError:
            raise LookupError(f"unknown host {name!r}") from None

    # ------------------------------------------------------------------
    # queries

    def host_of(self, container: str) -> str:
        try:
            return self.placements[container]
        except KeyError:
            raise LookupError(f"unknown container {container!r}") from None

    def containers_on(self, host: str) -> List[str]:
        self._require_host(host)
        return sorted(name for name, h in self.placements.items() if h == host)

    def load(self, host: str) -> int:
        """Containers currently placed on ``host``."""
        self._require_host(host)
        return sum(1 for h in self.placements.values() if h == host)

    def qp_usage(self, host: str) -> int:
        return sum(self.containers[name].qps
                   for name in self.containers
                   if self.placements.get(name) == host)

    def memory_usage(self, host: str) -> int:
        return sum(self.containers[name].memory_bytes
                   for name in self.containers
                   if self.placements.get(name) == host)

    def racks(self) -> List[str]:
        """Rack names in host-registration order."""
        seen: List[str] = []
        for info in self.hosts.values():
            if info.rack not in seen:
                seen.append(info.rack)
        return seen

    def hosts_in(self, rack: str) -> List[str]:
        out = [name for name, info in self.hosts.items() if info.rack == rack]
        if not out:
            raise LookupError(f"unknown rack {rack!r}")
        return out

    def rack_of(self, host: str) -> str:
        return self._require_host(host).rack

    # ------------------------------------------------------------------
    # drains + admission support

    def mark_draining(self, host: str) -> None:
        self._require_host(host)
        self.draining.add(host)

    def clear_draining(self, host: str) -> None:
        self.draining.discard(host)

    def suspect(self, host: str) -> None:
        """Distrust ``host`` (operator mark / partition report): the
        scheduler will not choose it as a destination until cleared."""
        self._require_host(host)
        self.suspected.add(host)

    def clear_suspect(self, host: str) -> None:
        self.suspected.discard(host)

    def fits(self, host: str, container: str) -> bool:
        """Would placing ``container`` on ``host`` respect its quotas?
        Draining hosts accept nothing."""
        info = self._require_host(host)
        if host in self.draining:
            return False
        demand = self.containers[container]
        if self.placements.get(container) == host:
            return True  # already there
        if self.qp_usage(host) + demand.qps > info.qp_quota:
            return False
        if self.memory_usage(host) + demand.memory_bytes > info.memory_bytes:
            return False
        return True

    def candidates(self, container: str, exclude: Iterable[str] = ()) -> List[str]:
        """Placement candidates for ``container`` in registration order:
        not excluded, not draining, and with quota headroom."""
        excluded = set(exclude)
        return [name for name in self.hosts
                if name not in excluded and self.fits(name, container)]

    # ------------------------------------------------------------------
    # mutation

    def place(self, container: str, host: str) -> None:
        """Record a completed move (the scheduler calls this after the
        supervisor reports success)."""
        if container not in self.containers:
            raise LookupError(f"unknown container {container!r}")
        self._require_host(host)
        self.placements[container] = host

    def __repr__(self) -> str:
        return (f"<FleetState hosts={len(self.hosts)} "
                f"containers={len(self.containers)} "
                f"draining={sorted(self.draining)}>")
