"""Calibration constants for the MigrRDMA reproduction.

Every timing or cost constant the simulation uses lives here so that the
relationship between experiments and model parameters is auditable in one
place.  Values are calibrated so the *shapes* of the paper's results hold
(see DESIGN.md §5); they are not claimed to be silicon-exact.

Units: seconds for times, bytes for sizes, Hz for rates unless noted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Gigabits per second expressed in bytes per second.
GBPS = 1e9 / 8

PAGE_SIZE = 4096

#: QPNs are 24-bit per the InfiniBand specification (§3.3 of the paper).
QPN_BITS = 24
QPN_SPACE = 1 << QPN_BITS


@dataclass
class LinkConfig:
    """Physical fabric parameters (ConnectX-5 + Arista 7260CX3 testbed)."""

    rate_bps: float = 100e9  # 100 Gbps line rate
    propagation_delay_s: float = 1e-6  # one switch hop, ~1 us
    mtu: int = 4096


@dataclass
class RnicConfig:
    """RNIC control/data-path latency model.

    Control-path costs are dominated by firmware command latency; the
    several-milliseconds connection setup figure follows KRCORE's
    measurements cited by the paper (§2.2 challenge 1).
    """

    # Control path (per verbs call, in seconds).
    alloc_pd_s: float = 5e-6
    create_cq_s: float = 25e-6
    create_srq_s: float = 30e-6
    create_qp_s: float = 80e-6
    # Per modify_qp transition; three transitions (INIT, RTR, RTS) plus the
    # out-of-band exchange bring one connection to ~1.5 ms, matching the
    # "setting up an RDMA connection takes several milliseconds" premise.
    modify_qp_s: float = 350e-6
    destroy_qp_s: float = 60e-6
    reg_mr_per_page_s: float = 0.30e-6  # page pinning + MTT update
    reg_mr_base_s: float = 20e-6
    dereg_mr_s: float = 15e-6
    alloc_mw_s: float = 10e-6
    alloc_dm_s: float = 12e-6  # on-chip (device) memory
    create_comp_channel_s: float = 8e-6

    # Data path.
    doorbell_s: float = 0.15e-6  # post_send -> NIC begins processing
    per_wqe_processing_s: float = 0.10e-6  # WQE fetch/parse inside the NIC
    completion_delivery_s: float = 0.05e-6
    max_qps: int = 16384  # "modern RNICs support more than 10K QPs"

    # On-chip memory capacity (ConnectX-5 has 256 KiB usable device memory).
    device_memory_bytes: int = 256 * KiB

    # Microarchitectural contention: while the NIC executes control-path
    # commands (QP creation during RDMA pre-setup), data-path processing
    # slows down — the effect Kong et al. measured and Figure 5 shows as
    # brownout dips.  Expressed as extra processing time per message as a
    # fraction of the message's serialization time.  The tx fraction is
    # larger: a *transmitting* partner pays NIC contention plus the CPU
    # cache/memory contention of posting while pre-establishing (the reason
    # Figure 5(b) dips more than 5(a)).
    control_contention_rx_frac: float = 0.06
    control_contention_tx_frac: float = 0.30


@dataclass
class CpuConfig:
    """CPU model for data-path cycle accounting (Table 4).

    Base per-operation cycle costs are in line with measured verbs post/poll
    costs on Xeon-class hardware; virtualization increments reproduce the
    paper's 4.6 - 8.3 extra cycles => 3 % - 9 % band.
    """

    clock_hz: float = 2.3e9  # E5-2698 v3 base clock

    # Base data-path cost in cycles, without MigrRDMA's virtualization.
    base_cycles: dict = field(
        default_factory=lambda: {
            "send": 92.0,
            "recv": 95.0,
            "write": 88.0,
            "read": 153.0,
            "poll": 60.0,
        }
    )

    # MigrRDMA's marginal costs per data-path action, in cycles.
    virt_dispatch_cycles: float = 1.2
    lkey_array_lookup_cycles: float = 2.4
    qpn_array_lookup_cycles: float = 2.2
    rkey_cache_hit_cycles: float = 2.6
    suspension_flag_check_cycles: float = 1.6
    wr_intercept_buffer_cycles: float = 35.0

    # LubeRDMA-style linked-list translation (per node visited).
    linked_list_node_cycles: float = 3.0

    # FreeFlow-style full queue virtualization (per WR copied between the
    # application queue and the shadow queue).
    queue_copy_cycles_per_wr: float = 240.0

    measurement_noise_frac: float = 0.02  # sampling jitter


@dataclass
class MigrationConfig:
    """CRIU/runc-like live migration engine parameters.

    Per-page costs reflect CRIU's memory pre-copy throughput; the
    "inefficient CRIU implementation for large and complicated memory
    structures" observation (paper §5.2, citing MigrOS) is modelled by the
    superlinear per-VMA dump cost.
    """

    # Dump (checkpoint) costs on the source.
    dump_base_s: float = 12e-3
    dump_per_page_s: float = 0.35e-6
    dump_per_vma_s: float = 18e-6
    # CRIU's parasite/ptrace handling degrades with many memory structures.
    dump_vma_superlinear_s: float = 0.030e-6  # * n_vmas * log2(n_vmas)

    # Restore costs on the destination.
    restore_base_s: float = 15e-3
    restore_per_page_s: float = 0.40e-6
    restore_per_vma_s: float = 22e-6

    # Full-restore tail: final forking/attach of the restored process tree.
    full_restore_base_s: float = 28e-3
    full_restore_per_vma_s: float = 6e-6

    # RDMA-specific dump cost (indirection-layer log serialization).
    dump_rdma_base_s: float = 2.5e-3
    dump_rdma_per_resource_s: float = 2.2e-6

    # Pre-copy loop control.
    precopy_max_iterations: int = 8
    precopy_stop_threshold_pages: int = 64

    # Pre-copy convergence watchdog / degradation ladder (DESIGN.md §15).
    # The watchdog always *observes* per-round dirty-vs-shipped bytes, but
    # the ladder only *acts* when `precopy_blackout_budget_s` is finite:
    # the inf default keeps every pre-existing run's event timing and
    # digests bit-identical.  When armed, rounds that stop converging
    # (dirty grew by >= `precopy_divergence_ratio` for
    # `precopy_divergence_rounds` consecutive rounds) are capped early:
    # stop-and-copy is forced if the projected blackout fits the budget,
    # otherwise the migration postpones (PrecopyDiverged -> rollback ->
    # scheduler requeue with backoff).
    precopy_blackout_budget_s: float = math.inf
    precopy_divergence_rounds: int = 2
    precopy_divergence_ratio: float = 1.05

    # State transfer uses a TCP stream over the same fabric.
    transfer_rate_bps: float = 40e9  # effective TCP goodput
    transfer_rtt_s: float = 80e-6
    per_message_overhead_s: float = 25e-6

    # Wait-before-stop upper bound for spotty networks (§3.4).
    wbs_timeout_s: float = 2.0

    # Future-work optimization (§3.3): after migration, partners re-fetch
    # the migrated service's rkeys in one batch instead of one demand miss
    # at a time.
    rkey_prefetch: bool = False

    # Partner notification control-plane message service time.
    notify_processing_s: float = 60e-6

    # Fault tolerance (repro.resilience, DESIGN.md §11).  The failure
    # detector leases every peer daemon for the migration's duration;
    # liveness probes are zero-cost callbacks, so these knobs never move a
    # fault-free timestamp.
    heartbeat_interval_s: float = 1e-3
    heartbeat_miss_threshold: int = 3
    # Pre-commit waits give up (and roll back) after these deadlines.
    presetup_deadline_s: float = 2.0
    wbs_stuck_timeout_s: float = 5.0


@dataclass
class HadoopConfig:
    """RDMA-Hadoop workload model (Figure 6)."""

    heartbeat_interval_s: float = 3.0
    failover_detect_timeout_s: float = 10.0
    task_log_replay_s: float = 6.5
    backup_container_start_s: float = 2.8
    dfsio_file_size_bytes: int = 4 * GiB
    dfsio_nfiles: int = 4
    dfsio_app_goodput_bps: float = 10e9  # HDFS-level goodput over 100G RDMA
    estimatepi_samples: int = 400_000_000
    estimatepi_compute_rate: float = 10_000_000.0  # samples/s per slave
    progress_report_interval_s: float = 0.5
    #: slave JVM heap model for pre-copy volume
    slave_heap_bytes: int = 6 * GiB
    slave_heap_dirty_bps: float = 256 * MiB


@dataclass
class Config:
    """Bundle of all model parameters, passed through the system."""

    link: LinkConfig = field(default_factory=LinkConfig)
    rnic: RnicConfig = field(default_factory=RnicConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    migration: MigrationConfig = field(default_factory=MigrationConfig)
    hadoop: HadoopConfig = field(default_factory=HadoopConfig)
    seed: int = 20250908  # SIGCOMM '25 opening day
    #: Flow-level aggregation of clean-window bulk RC traffic (DESIGN.md
    #: §12).  Pure wall-clock optimization — simulated timestamps, counters
    #: and digests are bit-identical either way; ``False`` forces the
    #: packet-level path everywhere (the equivalence tests' reference).
    flow_aggregation: bool = True
    #: Event-kernel backing: ``"wheel"`` (hierarchical timer wheel, the
    #: default) or ``"heap"`` (the legacy binary heap, kept as the
    #: equivalence reference).  Same bit-identical guarantee as above.
    scheduler: str = "wheel"

    def replace(self, **kwargs) -> "Config":
        return replace(self, **kwargs)


DEFAULT_CONFIG = Config()


def default_config() -> Config:
    """A fresh default configuration (safe to mutate per-experiment)."""
    return Config()
